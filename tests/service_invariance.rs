//! Integration: `CoverService` linearizability — N worker threads fire
//! interleaved queries, hypotheticals and mutations at one service on the
//! shared global `Runtime`, every response records the epoch it was served
//! at, and afterwards a *sequential replay* reconstructs each epoch's
//! system from the mutation log and recomputes every sampled answer fresh.
//! Every field of every response — picks, coverage, feasibility, passes,
//! peak bits — must be byte-identical to the fresh single-threaded run at
//! its epoch, at 1/2/4/8 threads: caching, coalescing and CELF-chain reuse
//! are execution optimizations only, never visible in an answer.

use rand::{rngs::StdRng, Rng, SeedableRng};
use std::sync::Mutex;
use streamcover::core::random_subset_elems;
use streamcover::prelude::*;

/// One sampled response: the hypothetical mutation (for `what_if`), the
/// query, and the answer the service returned.
struct Sample {
    hypo: Option<Mutation>,
    query: Query,
    answer: Answer,
}

/// The fixed pool of subset targets every thread queries from — repeats
/// across threads are what exercises the cache and the coalescer.
fn target_pool(n: usize) -> Vec<Vec<u32>> {
    let mut rng = StdRng::seed_from_u64(99);
    (0..6)
        .map(|i| random_subset_elems(&mut rng, n, 8 + 6 * i))
        .collect()
}

/// Applies a logged mutation to the replay system — the same calls the
/// service commits through, so replay epochs advance in lockstep.
fn apply(sys: &mut SetSystem, m: &Mutation) {
    match m {
        Mutation::Add { elems } => {
            sys.add_set(elems);
        }
        Mutation::Remove { id } => sys.remove_set(*id),
    }
}

/// Recomputes `query` fresh and single-threaded against `sys` and asserts
/// the served answer is byte-identical.
fn assert_matches_fresh(sys: &SetSystem, query: &Query, answer: &Answer, ctx: &str) {
    match (query, answer) {
        (Query::CoverForSubset { target }, Answer::Cover(a)) => {
            let mut canon = target.clone();
            canon.sort_unstable();
            canon.dedup();
            let tb = BitSet::from_iter(sys.universe(), canon.iter().map(|&e| e as usize));
            let fresh = greedy_cover_until(sys, usize::MAX, &tb);
            assert_eq!(a.solution, fresh.ids, "{ctx}: subset picks");
            assert_eq!(a.covered, fresh.coverage(), "{ctx}: subset coverage");
            assert_eq!(a.feasible, fresh.coverage() == tb.len(), "{ctx}");
        }
        (Query::MaxCover { k }, Answer::Cover(a)) => {
            let fresh = greedy_max_coverage(sys, *k);
            assert_eq!(a.solution, fresh.ids, "{ctx}: max-cover picks at k={k}");
            assert_eq!(a.covered, fresh.coverage(), "{ctx}: max-cover coverage");
            assert_eq!(a.feasible, fresh.is_feasible(), "{ctx}");
        }
        (Query::StreamCover { seed }, Answer::Stream(a)) => {
            let fresh = ThresholdGreedy.run(
                sys,
                Arrival::Random { seed: *seed },
                &mut StdRng::seed_from_u64(*seed),
            );
            assert_eq!(a.solution, fresh.solution, "{ctx}: stream picks");
            assert_eq!(a.feasible, fresh.feasible, "{ctx}");
            assert_eq!(a.passes, fresh.passes, "{ctx}: stream passes");
            assert_eq!(a.peak_bits, fresh.peak_bits, "{ctx}: stream peak bits");
        }
        (q, a) => panic!("{ctx}: answer kind mismatch for {q:?}: {a:?}"),
    }
}

/// The battery at one thread count.
fn run_battery(threads: usize) {
    let mut rng = StdRng::seed_from_u64(2017 + threads as u64);
    let w = planted_cover(&mut rng, 256, 48, 6);
    let initial = w.system.clone();
    let n = initial.universe();
    let m0 = initial.len();
    let svc = CoverService::with(
        w.system,
        Runtime::global(),
        ExecPolicy::sequential().workers(2),
    );
    let pool = target_pool(n);
    let mutation_log: Mutex<Vec<(u64, Mutation)>> = Mutex::new(Vec::new());

    let mut samples: Vec<Sample> = std::thread::scope(|s| {
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let svc = &svc;
                let pool = &pool;
                let mutation_log = &mutation_log;
                s.spawn(move || {
                    let mut rng = StdRng::seed_from_u64(1000 * (t as u64 + 1));
                    let mut out = Vec::new();
                    for _ in 0..40 {
                        match rng.gen_range(0u32..10) {
                            0 => {
                                let size = 1 + rng.gen_range(0usize..24);
                                let elems = random_subset_elems(&mut rng, n, size);
                                let (epoch, _id) = svc.add_set(&elems);
                                mutation_log
                                    .lock()
                                    .unwrap()
                                    .push((epoch, Mutation::Add { elems }));
                            }
                            1 => {
                                // Only initial ids: always in range, and
                                // removing a tombstone is a legal no-op
                                // mutation (still bumps the epoch).
                                let id = rng.gen_range(0..m0);
                                let epoch = svc.remove_set(id);
                                mutation_log
                                    .lock()
                                    .unwrap()
                                    .push((epoch, Mutation::Remove { id }));
                            }
                            2 => {
                                let hypo = if rng.gen_bool(0.5) {
                                    Mutation::Add {
                                        elems: random_subset_elems(&mut rng, n, 16),
                                    }
                                } else {
                                    Mutation::Remove {
                                        id: rng.gen_range(0..m0),
                                    }
                                };
                                let query = Query::MaxCover {
                                    k: rng.gen_range(1..6),
                                };
                                let answer = svc.what_if(hypo.clone(), query.clone());
                                out.push(Sample {
                                    hypo: Some(hypo),
                                    query,
                                    answer,
                                });
                            }
                            3..=5 => {
                                let target = pool[rng.gen_range(0..pool.len())].clone();
                                let a = svc.cover_for_subset(&target);
                                out.push(Sample {
                                    hypo: None,
                                    query: Query::CoverForSubset { target },
                                    answer: Answer::Cover(a),
                                });
                            }
                            6 | 7 => {
                                let k = rng.gen_range(0..10);
                                let a = svc.max_cover(k);
                                out.push(Sample {
                                    hypo: None,
                                    query: Query::MaxCover { k },
                                    answer: Answer::Cover(a),
                                });
                            }
                            _ => {
                                let seed = rng.gen_range(0u64..3);
                                let a = svc.stream_cover(seed);
                                out.push(Sample {
                                    hypo: None,
                                    query: Query::StreamCover { seed },
                                    answer: Answer::Stream(a),
                                });
                            }
                        }
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .flat_map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let mut log = mutation_log.into_inner().unwrap();
    log.sort_by_key(|&(epoch, _)| epoch);
    // Mutations serialize under the write lock and bump the epoch by
    // exactly one each: the logged epochs must be consecutive from the
    // initial system's epoch.
    for (i, &(epoch, _)) in log.iter().enumerate() {
        assert_eq!(epoch, initial.epoch() + 1 + i as u64, "epoch gap in log");
    }
    assert_eq!(svc.epoch(), initial.epoch() + log.len() as u64);

    // Sequential replay: walk the samples in epoch order, advancing a
    // rolling copy of the initial system through the mutation log, and
    // recompute every answer fresh at its serving epoch.
    samples.sort_by_key(|s| s.answer.epoch());
    let mut replay = initial.clone();
    let mut applied = 0usize;
    for (i, sample) in samples.iter().enumerate() {
        let epoch = sample.answer.epoch();
        while replay.epoch() < epoch {
            apply(&mut replay, &log[applied].1);
            applied += 1;
        }
        assert_eq!(
            replay.epoch(),
            epoch,
            "sample {i}: served epoch must be reachable by replay"
        );
        let ctx = format!("threads={threads} sample={i} epoch={epoch}");
        match &sample.hypo {
            None => assert_matches_fresh(&replay, &sample.query, &sample.answer, &ctx),
            Some(hypo) => {
                // what_if: the answer is based on this epoch's system plus
                // the hypothetical — which must not have leaked into the
                // replay stream (the log only holds committed mutations).
                let mut ghost = replay.clone();
                apply(&mut ghost, hypo);
                match (&sample.query, &sample.answer) {
                    (Query::MaxCover { k }, Answer::Cover(a)) => {
                        let fresh = greedy_max_coverage(&ghost, *k);
                        assert_eq!(a.solution, fresh.ids, "{ctx}: what-if picks");
                        assert_eq!(a.covered, fresh.coverage(), "{ctx}: what-if coverage");
                    }
                    (q, a) => panic!("{ctx}: unexpected what-if shape {q:?} / {a:?}"),
                }
            }
        }
    }

    let stats = svc.stats();
    assert_eq!(
        stats.queries,
        samples.len() as u64,
        "every sampled op is a query"
    );
    assert_eq!(stats.mutations, log.len() as u64);
    assert_eq!(
        stats.cache_hits + stats.coalesced + stats.computed,
        stats.queries,
        "every query is exactly one of hit / coalesced / computed ({stats:?})"
    );
}

#[test]
fn service_responses_replay_sequentially_at_1_thread() {
    run_battery(1);
}

#[test]
fn service_responses_replay_sequentially_at_2_threads() {
    run_battery(2);
}

#[test]
fn service_responses_replay_sequentially_at_4_threads() {
    run_battery(4);
}

#[test]
fn service_responses_replay_sequentially_at_8_threads() {
    run_battery(8);
}
