//! Set systems: an indexed collection of subsets of a shared universe `[n]`,
//! backed by the hybrid sparse/dense arena of [`crate::store`].

use crate::bitset::BitSet;
use crate::shard::{split_ranges, ShardPlan, ShardedStore, StoreShard};
use crate::store::{CompactionMap, ReprPolicy, SetRef, SetStore};
use std::fmt;

/// Identifier of a set within a [`SetSystem`] (its stream position).
pub type SetId = usize;

/// A collection `S_1, …, S_m` of subsets of the universe `[n]`.
///
/// This is the static, offline representation of an instance; streaming
/// algorithms consume it through the `streamcover-stream` substrate which
/// controls arrival order and pass counting.
///
/// Storage lives in a contiguous CSR-style [`SetStore`]: each set is kept
/// either as a sorted `u32` element list or as a word-packed bitmap,
/// selected per set by the system's [`ReprPolicy`] (the default `Auto`
/// cutover picks whichever is cheaper under the paper's bit accounting).
/// Reads go through the `Copy` view type [`SetRef`].
#[derive(Clone)]
pub struct SetSystem {
    store: SetStore,
    /// Mutation version, bumped by every mutating call on this instance
    /// (see [`epoch`](Self::epoch)).
    epoch: u64,
}

impl SetSystem {
    /// Creates an empty system over `[universe]` with the automatic
    /// sparse/dense cutover.
    pub fn new(universe: usize) -> Self {
        SetSystem {
            store: SetStore::new(universe),
            epoch: 0,
        }
    }

    /// Creates an empty system with an explicit representation policy.
    pub fn with_policy(universe: usize, policy: ReprPolicy) -> Self {
        SetSystem {
            store: SetStore::with_policy(universe, policy),
            epoch: 0,
        }
    }

    /// Creates a system from pre-built sets.
    ///
    /// # Panics
    /// Panics if any set's capacity differs from `universe`.
    pub fn from_sets(universe: usize, sets: Vec<BitSet>) -> Self {
        let mut sys = SetSystem::new(universe);
        for s in &sets {
            sys.store.push_bitset(s);
        }
        sys
    }

    /// Creates a system from element lists.
    pub fn from_elements(universe: usize, lists: &[Vec<usize>]) -> Self {
        let mut sys = SetSystem::new(universe);
        for l in lists {
            sys.store.push_elems(l.iter().copied());
        }
        sys
    }

    /// Appends a set, returning its id.
    pub fn push(&mut self, set: BitSet) -> SetId {
        self.epoch += 1;
        self.store.push_bitset(&set)
    }

    /// Appends a set given as a strictly increasing element list — the
    /// zero-copy emitter path for the `dist` generators.
    ///
    /// # Panics
    /// Panics if any element is `>= universe` or the list is not strictly
    /// increasing.
    pub fn push_sorted(&mut self, elems: &[u32]) -> SetId {
        self.epoch += 1;
        self.store.push_sorted(elems)
    }

    /// Appends a set given as sorted disjoint `(start, len)` runs — the
    /// run-native emitter path for huge-universe catalogs (no per-element
    /// list is ever materialized; see [`SetStore::push_runs`]).
    ///
    /// # Panics
    /// Panics if runs are empty, unsorted, overlapping, or out of universe.
    pub fn push_runs(&mut self, runs: &[(u32, u32)]) -> SetId {
        self.epoch += 1;
        self.store.push_runs(runs)
    }

    /// Appends a set from an arbitrary element iterator (sorted and
    /// deduplicated internally).
    pub fn push_elems(&mut self, elems: impl IntoIterator<Item = usize>) -> SetId {
        self.epoch += 1;
        self.store.push_elems(elems)
    }

    /// Appends a copy of an existing view, preserving its representation
    /// (cheap cross-system clone).
    pub fn push_ref(&mut self, set: SetRef<'_>) -> SetId {
        self.epoch += 1;
        self.store.push_ref(set)
    }

    /// The mutation epoch: a version counter bumped by every mutating call
    /// on this instance (`push*`, [`add_set`](Self::add_set),
    /// [`remove_set`](Self::remove_set)). The serving layer keys its
    /// solution caches on `(epoch, query)` so any mutation invalidates
    /// every cached answer.
    ///
    /// The counter orders mutations on *one* instance — it is not a
    /// content hash: clones carry their source's epoch forward, while
    /// construction helpers (`from_elements`, `project`, `subsystem`,
    /// `from_shards`, …) build at epoch 0. Equality
    /// ([`PartialEq`]) ignores it.
    #[inline]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Appends a set given as a strictly increasing element list — the
    /// resident-system mutation seam the serving layer's `add_set` request
    /// commits through. Identical to [`push_sorted`](Self::push_sorted)
    /// (including the epoch bump); the alias names the live-mutation
    /// intent.
    ///
    /// # Panics
    /// Panics if any element is `>= universe` or the list is not strictly
    /// increasing.
    pub fn add_set(&mut self, elems: &[u32]) -> SetId {
        self.push_sorted(elems)
    }

    /// Tombstones the set with id `id`: its descriptor becomes the empty
    /// set (ids of all other sets unchanged, arena bytes left in place —
    /// see [`SetStore::remove`]), and the [`epoch`](Self::epoch) is
    /// bumped. Solvers never pick an empty set, so a fresh run against
    /// the mutated system behaves as if the set was never inserted except
    /// for id numbering. Idempotent per call (each call still bumps the
    /// epoch).
    ///
    /// # Panics
    /// Panics if `id` is out of range.
    pub fn remove_set(&mut self, id: SetId) {
        self.epoch += 1;
        self.store.remove(id);
    }

    /// Rebuilds the backing arenas dropping every tombstoned slot
    /// ([`SetStore::compact`]) and bumps the [`epoch`](Self::epoch) — ids
    /// change, so every cached answer keyed on the old epoch is dead. The
    /// returned [`CompactionMap`] translates old ids to new ids; live sets
    /// keep their relative order and representation, so a tombstone-free
    /// system compacts to an identical system (`is_identity` map) and
    /// answers computed after compaction equal answers computed before,
    /// modulo the remap.
    pub fn compact(&mut self) -> CompactionMap {
        self.epoch += 1;
        self.store.compact()
    }

    /// Paper-accounting bits still occupied by tombstoned slots' arena
    /// bytes (0 right after [`compact`](Self::compact)).
    pub fn tombstone_bits(&self) -> u64 {
        self.store.tombstone_bits()
    }

    /// Number of tombstoned slots.
    pub fn num_tombstones(&self) -> usize {
        self.store.num_tombstones()
    }

    /// Fraction of stored bits belonging to live sets — the garbage gauge
    /// a serving-layer `CompactionPolicy` watches (see
    /// [`SetStore::live_ratio`]).
    pub fn live_ratio(&self) -> f64 {
        self.store.live_ratio()
    }

    /// Universe size `n`.
    #[inline]
    pub fn universe(&self) -> usize {
        self.store.universe()
    }

    /// Number of sets `m`.
    #[inline]
    pub fn len(&self) -> usize {
        self.store.len()
    }

    /// Whether the system holds no sets.
    pub fn is_empty(&self) -> bool {
        self.store.is_empty()
    }

    /// The set with id `i`.
    #[inline]
    pub fn set(&self, i: SetId) -> SetRef<'_> {
        self.store.get(i)
    }

    /// Iterates `(id, set)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SetId, SetRef<'_>)> {
        (0..self.store.len()).map(|i| (i, self.store.get(i)))
    }

    /// The backing arena (diagnostics, benchmarking).
    pub fn store(&self) -> &SetStore {
        &self.store
    }

    /// `[sparse, dense, chunked, elias_fano]` counts of stored
    /// representations.
    pub fn repr_counts(&self) -> [usize; 4] {
        self.store.repr_counts()
    }

    /// Sum over sets of the bits the actual representation costs under the
    /// paper's accounting (`|S|·⌈log₂ n⌉` sparse, `n` dense, measured
    /// encoded size for the compressed backends).
    pub fn stored_bits(&self) -> u64 {
        self.store.stored_bits()
    }

    /// Union of the sets with the given ids.
    pub fn coverage(&self, ids: &[SetId]) -> BitSet {
        let mut c = BitSet::new(self.universe());
        for &i in ids {
            c.union_with_ref(self.store.get(i));
        }
        c
    }

    /// `|⋃_{i∈ids} S_i|`, the objective of maximum coverage.
    pub fn coverage_len(&self, ids: &[SetId]) -> usize {
        self.coverage(ids).len()
    }

    /// Whether the given ids form a feasible set cover of `[n]`.
    pub fn is_cover(&self, ids: &[SetId]) -> bool {
        self.coverage(ids).is_full()
    }

    /// Whether the instance admits *any* cover (i.e. `⋃_i S_i = [n]`).
    pub fn is_coverable(&self) -> bool {
        let all: Vec<SetId> = (0..self.len()).collect();
        self.is_cover(&all)
    }

    /// Elements of `[n]` not covered by any set.
    pub fn uncoverable_elements(&self) -> BitSet {
        let all: Vec<SetId> = (0..self.len()).collect();
        self.coverage(&all).complement()
    }

    /// Restricts every set to `domain`, producing the projected system used
    /// by element sampling (`S'_i = S_i ∩ U_smpl`, Algorithm 1 step 3b).
    ///
    /// The projected sets keep the original universe capacity so ids and
    /// element labels stay stable; only membership outside `domain` is
    /// dropped. Projections are re-homed by the policy's cutover, so a
    /// dense set projected onto a thin sample lands in the sparse backend.
    pub fn project(&self, domain: &BitSet) -> SetSystem {
        let mut out = SetSystem::with_policy(self.universe(), self.store.policy());
        for (_, s) in self.iter() {
            out.store.push_sorted(&s.intersection_elems(domain));
        }
        out
    }

    /// The subsystem holding copies of the sets with the given ids, in the
    /// given order (ids are re-numbered from 0).
    pub fn subsystem(&self, ids: impl IntoIterator<Item = SetId>) -> SetSystem {
        let mut out = SetSystem::with_policy(self.universe(), self.store.policy());
        for i in ids {
            out.store.push_ref(self.store.get(i));
        }
        out
    }

    /// Total number of (set, element) incidences, `Σ|S_i|` — the input size
    /// `O(mn)` that streaming algorithms must be sublinear in.
    pub fn total_incidences(&self) -> usize {
        self.store.total_incidences()
    }

    /// Wraps an already-built arena (the inverse of
    /// [`into_store`](Self::into_store)).
    pub fn from_store(store: SetStore) -> SetSystem {
        SetSystem { store, epoch: 0 }
    }

    /// Unwraps the backing arena, consuming the system — how shard
    /// assembly ([`ShardedStore::from_shard_stores`]) takes ownership of
    /// per-worker arenas built through the `SetSystem` API.
    pub fn into_store(self) -> SetStore {
        self.store
    }

    /// Zero-copy shard views: `shards` contiguous near-equal set-id ranges
    /// over the single flat arena (clamped to `[1, m]`, with at least one
    /// view even when empty). Each [`StoreShard`] walks only its own
    /// descriptor span, so parallel consumers — `ParallelPass` chunk
    /// workers, parallel greedy seeding — iterate their own arena region
    /// instead of striding a shared one.
    pub fn shards(&self, shards: usize) -> Vec<StoreShard<'_>> {
        let k = ShardPlan::BySetRange { shards }.shard_count(self.len(), self.universe());
        split_ranges(self.len(), k)
            .into_iter()
            .map(|r| StoreShard::new(&self.store, r))
            .collect()
    }

    /// Splits the system into per-shard arenas under `plan`, building the
    /// shards in parallel on the shared default
    /// [`Runtime`](crate::runtime::Runtime) (see
    /// [`into_sharded_in`](Self::into_sharded_in)). `BySetRange` shards are
    /// assembled through the existing [`subsystem`](Self::subsystem)
    /// machinery (representations copied verbatim); `ByUniverseBlocks`
    /// shards through [`project`](Self::project) onto each block's domain
    /// (pieces re-homed by the policy cutover, exactly like any other
    /// projection).
    pub fn into_sharded(&self, plan: ShardPlan) -> ShardedStore {
        self.into_sharded_in(crate::runtime::Runtime::global(), plan)
    }

    /// [`into_sharded`](Self::into_sharded) on an explicit runtime: each
    /// shard's build is one pooled work item on `rt`. The result is
    /// identical for every pool size.
    pub fn into_sharded_in(&self, rt: &crate::runtime::Runtime, plan: ShardPlan) -> ShardedStore {
        let (n, policy) = (self.universe(), self.store.policy());
        let k = plan.shard_count(self.len(), n);
        match plan {
            ShardPlan::BySetRange { .. } => {
                let stores = rt.map_parts(&split_ranges(self.len(), k), |r| {
                    self.subsystem(r.clone()).into_store()
                });
                ShardedStore::from_shard_stores(n, policy, stores)
            }
            ShardPlan::ByUniverseBlocks { .. } => {
                let blocks = split_ranges(n, k);
                let stores = rt.map_parts(&blocks, |b| {
                    let dom = BitSet::from_iter(n, b.clone());
                    self.project(&dom).into_store()
                });
                ShardedStore::from_block_stores(n, policy, stores, blocks)
            }
        }
    }

    /// Reassembles a flat system from per-shard arenas: the shard
    /// concatenation under `BySetRange` (representations preserved
    /// verbatim), the block-order piece concatenation per logical set under
    /// `ByUniverseBlocks` (representations re-chosen by the policy).
    /// Round-trips with [`into_sharded`](Self::into_sharded) to a
    /// semantically equal system under every plan and policy.
    pub fn from_shards(sharded: &ShardedStore) -> SetSystem {
        let mut out = SetSystem::with_policy(sharded.universe(), sharded.policy());
        match sharded.plan() {
            ShardPlan::BySetRange { .. } => {
                for shard in sharded.shards() {
                    for j in 0..shard.len() {
                        out.store.push_ref(shard.get(j));
                    }
                }
            }
            ShardPlan::ByUniverseBlocks { .. } => {
                for i in 0..sharded.len() {
                    out.store.push_sorted(&sharded.logical_elems(i));
                }
            }
        }
        out
    }
}

impl PartialEq for SetSystem {
    /// Semantic equality: same universe and the same sequence of sets,
    /// regardless of each set's representation.
    fn eq(&self, other: &Self) -> bool {
        self.universe() == other.universe()
            && self.len() == other.len()
            && (0..self.len()).all(|i| self.set(i) == other.set(i))
    }
}

impl Eq for SetSystem {}

impl fmt::Debug for SetSystem {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let [sp, de, ch, ef] = self.repr_counts();
        write!(
            f,
            "SetSystem{{n={}, m={}, sparse={sp}, dense={de}, chunked={ch}, ef={ef}}}",
            self.universe(),
            self.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::SetRepr;

    fn demo() -> SetSystem {
        SetSystem::from_elements(
            6,
            &[vec![0, 1, 2], vec![2, 3], vec![3, 4, 5], vec![0, 5], vec![]],
        )
    }

    #[test]
    fn epoch_counts_mutations() {
        let mut s = demo();
        assert_eq!(s.epoch(), 0, "construction helpers build at epoch 0");
        let id = s.add_set(&[1, 4]);
        assert_eq!(id, 5);
        assert_eq!(s.epoch(), 1);
        s.push_elems([0usize, 2]);
        assert_eq!(s.epoch(), 2);
        s.push(crate::bitset::BitSet::from_iter(6, [3usize]));
        assert_eq!(s.epoch(), 3);
        s.remove_set(id);
        assert_eq!(s.epoch(), 4);
        // Clones carry the epoch forward; equality ignores it.
        let c = s.clone();
        assert_eq!(c.epoch(), 4);
        let fresh = SetSystem::from_elements(6, &[vec![0]]);
        let mut fresh2 = SetSystem::new(6);
        fresh2.push_sorted(&[0]);
        assert_eq!(fresh, fresh2, "PartialEq ignores the epoch");
        assert_ne!(fresh.epoch(), fresh2.epoch());
    }

    #[test]
    fn remove_set_tombstones_in_place() {
        let mut s = demo();
        let m = s.len();
        s.remove_set(1);
        assert_eq!(s.len(), m, "ids of other sets are unchanged");
        assert_eq!(s.set(1).len(), 0, "removed set reads as empty");
        assert_eq!(s.set(0).to_vec(), vec![0, 1, 2], "neighbors untouched");
        assert_eq!(s.set(2).to_vec(), vec![3, 4, 5]);
        // Idempotent; a later add still appends at the end.
        s.remove_set(1);
        assert_eq!(s.set(1).len(), 0);
        let id = s.add_set(&[2, 3]);
        assert_eq!(id, m);
        assert_eq!(s.set(id).to_vec(), vec![2, 3]);
    }

    #[test]
    fn compact_drops_tombstones_and_remaps() {
        let mut s = demo();
        let before_bits = s.stored_bits();
        s.remove_set(1);
        s.remove_set(4); // the genuinely empty set — charges 0 but drops
        assert_eq!(s.stored_bits(), before_bits, "tombstones stay charged");
        assert_eq!(s.num_tombstones(), 2);
        assert!(s.live_ratio() < 1.0);
        let epoch = s.epoch();
        let map = s.compact();
        assert_eq!(s.epoch(), epoch + 1, "compaction is a mutation");
        assert_eq!(s.len(), 3);
        assert_eq!(s.tombstone_bits(), 0);
        assert_eq!(s.num_tombstones(), 0);
        assert_eq!(s.live_ratio(), 1.0);
        // Survivors keep relative order; answers translate through the map.
        assert_eq!(map.remap_ids(&[0, 2, 3]), vec![0, 1, 2]);
        assert_eq!(s.set(0).to_vec(), vec![0, 1, 2]);
        assert_eq!(s.set(1).to_vec(), vec![3, 4, 5]);
        assert_eq!(s.set(2).to_vec(), vec![0, 5]);
        assert!(s.is_cover(&map.remap_ids(&[0, 2])));
    }

    #[test]
    fn compact_without_tombstones_is_semantic_noop() {
        let mut s = demo();
        let orig = s.clone();
        let map = s.compact();
        assert!(map.is_identity());
        assert_eq!(s, orig);
        assert_eq!(s.epoch(), orig.epoch() + 1, "the epoch still bumps");
    }

    #[test]
    fn basic_accessors() {
        let s = demo();
        assert_eq!(s.universe(), 6);
        assert_eq!(s.len(), 5);
        assert_eq!(s.set(1).to_vec(), vec![2, 3]);
        assert_eq!(s.total_incidences(), 3 + 2 + 3 + 2);
    }

    #[test]
    fn coverage_and_feasibility() {
        let s = demo();
        assert_eq!(s.coverage_len(&[0, 1]), 4);
        assert!(s.is_cover(&[0, 2]));
        assert!(!s.is_cover(&[0, 1]));
        assert!(s.is_cover(&[0, 1, 2, 3, 4]));
        assert!(s.is_coverable());
    }

    #[test]
    fn duplicate_ids_in_cover_are_harmless() {
        let s = demo();
        assert!(s.is_cover(&[0, 2, 2, 0]));
        assert_eq!(s.coverage_len(&[1, 1, 1]), 2);
    }

    #[test]
    fn uncoverable_detection() {
        let s = SetSystem::from_elements(4, &[vec![0], vec![1]]);
        assert!(!s.is_coverable());
        assert_eq!(s.uncoverable_elements().to_vec(), vec![2, 3]);
    }

    #[test]
    fn empty_system() {
        let s = SetSystem::new(3);
        assert!(s.is_empty());
        assert!(!s.is_coverable());
        assert!(!s.is_cover(&[]));
        let s0 = SetSystem::new(0);
        // Zero universe: the empty collection vacuously covers.
        assert!(s0.is_cover(&[]));
    }

    #[test]
    fn projection_keeps_universe() {
        let s = demo();
        let dom = BitSet::from_iter(6, [2, 3]);
        let p = s.project(&dom);
        assert_eq!(p.universe(), 6);
        assert_eq!(p.set(0).to_vec(), vec![2]);
        assert_eq!(p.set(1).to_vec(), vec![2, 3]);
        assert_eq!(p.set(3).to_vec(), Vec::<usize>::new());
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mismatched_set_panics() {
        SetSystem::from_sets(5, vec![BitSet::new(6)]);
    }

    #[test]
    fn policy_controls_representation() {
        let lists = vec![vec![0usize, 1, 2], (0..60).collect::<Vec<usize>>()];
        let mut auto = SetSystem::new(64);
        let mut sparse = SetSystem::with_policy(64, ReprPolicy::ForceSparse);
        for l in &lists {
            auto.push_elems(l.iter().copied());
            sparse.push_elems(l.iter().copied());
        }
        // Auto: ⌈log₂ 64⌉ = 6 ⇒ size-3 set sparse (18 ≤ 64), size-60 dense.
        assert_eq!(auto.set(0).repr(), SetRepr::Sparse);
        assert_eq!(auto.set(1).repr(), SetRepr::Dense);
        assert_eq!(sparse.repr_counts(), [2, 0, 0, 0]);
        // Semantic equality holds across policies.
        assert_eq!(auto, sparse);
    }

    #[test]
    fn subsystem_selects_and_renumbers() {
        let s = demo();
        let sub = s.subsystem([2, 0]);
        assert_eq!(sub.len(), 2);
        assert_eq!(sub.set(0), s.set(2));
        assert_eq!(sub.set(1), s.set(0));
    }

    #[test]
    fn shards_view_is_a_partition() {
        let s = demo();
        let shards = s.shards(2);
        assert_eq!(shards.len(), 2);
        assert_eq!(shards[0].ids(), 0..3);
        assert_eq!(shards[1].ids(), 3..5);
        assert_eq!(shards[1].get(0), s.set(3));
        // Clamped to m, and the empty system still yields one view.
        assert_eq!(s.shards(99).len(), 5);
        assert_eq!(SetSystem::new(4).shards(3).len(), 1);
    }

    #[test]
    fn sharded_round_trip_both_plans() {
        use crate::shard::ShardPlan;
        let s = demo();
        for plan in [
            ShardPlan::BySetRange { shards: 2 },
            ShardPlan::ByUniverseBlocks { blocks: 3 },
        ] {
            let sharded = s.into_sharded(plan);
            assert_eq!(sharded.len(), s.len(), "{plan:?}");
            let back = SetSystem::from_shards(&sharded);
            assert_eq!(back, s, "{plan:?} round-trip");
        }
    }

    #[test]
    fn into_store_from_store_round_trip() {
        let s = demo();
        let back = SetSystem::from_store(s.clone().into_store());
        assert_eq!(back, s);
    }

    #[test]
    fn clone_is_deep_and_semantic_eq() {
        let s = demo();
        let mut c = s.clone();
        assert_eq!(s, c);
        c.push_elems([0usize]);
        assert_ne!(s, c);
        assert_eq!(s.len() + 1, c.len());
    }
}
