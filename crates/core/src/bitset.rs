//! Fixed-capacity bitsets over a ground universe `[n] = {0, …, n-1}`.
//!
//! Every object in the paper — the sets `S_i`, `T_i`, the universe remainder
//! `U`, sampled element sets `U_smpl` — is a subset of a fixed universe, so a
//! word-packed bitset is the natural substrate. All set algebra used by the
//! solvers and the hard-distribution samplers lives here.

use std::fmt;

/// Number of bits in one storage word.
const WORD_BITS: usize = 64;

/// A subset of the fixed universe `{0, …, capacity-1}`, packed into `u64`
/// words.
///
/// The capacity is fixed at construction; all binary operations require both
/// operands to share a capacity (enforced with a panic, since mixing
/// universes is always a logic error in this codebase).
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct BitSet {
    words: Vec<u64>,
    capacity: usize,
}

impl BitSet {
    /// Creates an empty subset of `{0, …, capacity-1}`.
    pub fn new(capacity: usize) -> Self {
        let nwords = capacity.div_ceil(WORD_BITS);
        BitSet {
            words: vec![0; nwords],
            capacity,
        }
    }

    /// Creates the full set `{0, …, capacity-1}`.
    pub fn full(capacity: usize) -> Self {
        let mut s = Self::new(capacity);
        for w in &mut s.words {
            *w = u64::MAX;
        }
        s.trim();
        s
    }

    /// Creates a set from an iterator of elements.
    ///
    /// # Panics
    /// Panics if any element is `>= capacity`.
    pub fn from_iter(capacity: usize, elems: impl IntoIterator<Item = usize>) -> Self {
        let mut s = Self::new(capacity);
        for e in elems {
            s.insert(e);
        }
        s
    }

    /// Creates a set over `[capacity]` from a pre-packed word slab (used by
    /// the dense arena backend of `SetStore`).
    ///
    /// # Panics
    /// Panics if `words` is not exactly `⌈capacity/64⌉` long.
    pub fn from_words(capacity: usize, words: &[u64]) -> Self {
        assert_eq!(
            words.len(),
            capacity.div_ceil(WORD_BITS),
            "word slab length mismatch for capacity {capacity}"
        );
        let mut s = BitSet {
            words: words.to_vec(),
            capacity,
        };
        s.trim();
        s
    }

    /// The packed word slab (dense kernel interface).
    #[inline]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable packed word slab, for in-place dense kernels.
    ///
    /// Bits at positions `>= capacity` must be left zero.
    #[inline]
    pub(crate) fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// The universe size this set lives in.
    #[inline]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Zeroes any bits at positions `>= capacity` (they must stay zero for
    /// `len`/`is_full`/equality to be correct).
    #[inline]
    fn trim(&mut self) {
        let rem = self.capacity % WORD_BITS;
        if rem != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << rem) - 1;
            }
        }
    }

    /// Inserts element `e`. Returns `true` if it was newly inserted.
    ///
    /// # Panics
    /// Panics if `e >= capacity`.
    #[inline]
    pub fn insert(&mut self, e: usize) -> bool {
        assert!(
            e < self.capacity,
            "element {e} out of universe [{}]",
            self.capacity
        );
        let (w, b) = (e / WORD_BITS, e % WORD_BITS);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] |= mask;
        !was
    }

    /// Removes element `e`. Returns `true` if it was present.
    #[inline]
    pub fn remove(&mut self, e: usize) -> bool {
        assert!(
            e < self.capacity,
            "element {e} out of universe [{}]",
            self.capacity
        );
        let (w, b) = (e / WORD_BITS, e % WORD_BITS);
        let mask = 1u64 << b;
        let was = self.words[w] & mask != 0;
        self.words[w] &= !mask;
        was
    }

    /// Membership test.
    #[inline]
    pub fn contains(&self, e: usize) -> bool {
        if e >= self.capacity {
            return false;
        }
        let (w, b) = (e / WORD_BITS, e % WORD_BITS);
        self.words[w] & (1u64 << b) != 0
    }

    /// Number of elements in the set.
    #[inline]
    pub fn len(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Whether the set is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.words.iter().all(|&w| w == 0)
    }

    /// Whether the set equals the whole universe.
    pub fn is_full(&self) -> bool {
        self.len() == self.capacity
    }

    /// Removes all elements.
    pub fn clear(&mut self) {
        for w in &mut self.words {
            *w = 0;
        }
    }

    #[inline]
    fn assert_compat(&self, other: &Self) {
        assert_eq!(
            self.capacity, other.capacity,
            "bitset universe mismatch: {} vs {}",
            self.capacity, other.capacity
        );
    }

    /// In-place union: `self ∪= other`.
    pub fn union_with(&mut self, other: &Self) {
        self.assert_compat(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a |= b;
        }
    }

    /// In-place intersection: `self ∩= other`.
    pub fn intersect_with(&mut self, other: &Self) {
        self.assert_compat(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= b;
        }
    }

    /// In-place difference: `self \= other`.
    pub fn difference_with(&mut self, other: &Self) {
        self.assert_compat(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a &= !b;
        }
    }

    /// In-place symmetric difference: `self Δ= other`.
    pub fn symmetric_difference_with(&mut self, other: &Self) {
        self.assert_compat(other);
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            *a ^= b;
        }
    }

    /// Returns `self ∪ other` as a new set.
    pub fn union(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.union_with(other);
        s
    }

    /// Returns `self ∩ other` as a new set.
    pub fn intersection(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.intersect_with(other);
        s
    }

    /// Returns `self \ other` as a new set.
    pub fn difference(&self, other: &Self) -> Self {
        let mut s = self.clone();
        s.difference_with(other);
        s
    }

    /// Returns the complement `[capacity] \ self`.
    pub fn complement(&self) -> Self {
        let mut s = self.clone();
        for w in &mut s.words {
            *w = !*w;
        }
        s.trim();
        s
    }

    /// `|self ∩ other|` without allocating.
    pub fn intersection_len(&self, other: &Self) -> usize {
        self.assert_compat(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & b).count_ones() as usize)
            .sum()
    }

    /// `|self ∪ other|` without allocating.
    pub fn union_len(&self, other: &Self) -> usize {
        self.assert_compat(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a | b).count_ones() as usize)
            .sum()
    }

    /// `|self \ other|` without allocating.
    pub fn difference_len(&self, other: &Self) -> usize {
        self.assert_compat(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a & !b).count_ones() as usize)
            .sum()
    }

    /// Hamming distance `Δ(self, other) = |self Δ other|` (used by GHD).
    pub fn hamming_distance(&self, other: &Self) -> usize {
        self.assert_compat(other);
        self.words
            .iter()
            .zip(&other.words)
            .map(|(a, b)| (a ^ b).count_ones() as usize)
            .sum()
    }

    /// Whether `self ∩ other = ∅` (the Disj predicate).
    pub fn is_disjoint(&self, other: &Self) -> bool {
        self.assert_compat(other);
        self.words.iter().zip(&other.words).all(|(a, b)| a & b == 0)
    }

    /// Whether `self ⊆ other`.
    pub fn is_subset_of(&self, other: &Self) -> bool {
        self.assert_compat(other);
        self.words
            .iter()
            .zip(&other.words)
            .all(|(a, b)| a & !b == 0)
    }

    /// Iterates over elements in increasing order.
    pub fn iter(&self) -> Iter<'_> {
        Iter {
            set: self,
            word_idx: 0,
            current: self.words.first().copied().unwrap_or(0),
        }
    }

    /// The smallest element, if any.
    pub fn first(&self) -> Option<usize> {
        self.iter().next()
    }

    /// Collects the elements into a `Vec`.
    pub fn to_vec(&self) -> Vec<usize> {
        self.iter().collect()
    }

    /// Number of bits of memory an algorithm is charged for storing this set
    /// *explicitly as a member list* (`len · ⌈log₂ n⌉` bits), the accounting
    /// convention used for streaming algorithms in the paper.
    pub fn stored_bits_sparse(&self) -> u64 {
        let logn = usize::BITS - (self.capacity.max(2) - 1).leading_zeros();
        self.len() as u64 * logn as u64
    }

    /// Number of bits for storing this set as a packed bitmap (`n` bits).
    pub fn stored_bits_dense(&self) -> u64 {
        self.capacity as u64
    }
}

/// Iterator over the elements of a [`BitSet`] in increasing order.
pub struct Iter<'a> {
    set: &'a BitSet,
    word_idx: usize,
    current: u64,
}

impl Iterator for Iter<'_> {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        while self.current == 0 {
            self.word_idx += 1;
            if self.word_idx >= self.set.words.len() {
                return None;
            }
            self.current = self.set.words[self.word_idx];
        }
        let bit = self.current.trailing_zeros() as usize;
        self.current &= self.current - 1;
        Some(self.word_idx * WORD_BITS + bit)
    }
}

impl<'a> IntoIterator for &'a BitSet {
    type Item = usize;
    type IntoIter = Iter<'a>;
    fn into_iter(self) -> Iter<'a> {
        self.iter()
    }
}

impl fmt::Debug for BitSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "BitSet[{}]{{", self.capacity)?;
        for (i, e) in self.iter().enumerate() {
            if i > 0 {
                write!(f, ",")?;
            }
            write!(f, "{e}")?;
            if i > 32 {
                write!(f, ",…")?;
                break;
            }
        }
        write!(f, "}}")
    }
}

/// Samples a uniformly random `size`-subset of `{0,…,capacity-1}` using
/// Floyd's algorithm (O(size) expected insertions).
pub fn random_subset<R: rand::Rng + ?Sized>(rng: &mut R, capacity: usize, size: usize) -> BitSet {
    BitSet::from_iter(
        capacity,
        random_subset_elems(rng, capacity, size)
            .into_iter()
            .map(|e| e as usize),
    )
}

/// [`random_subset`] as a sorted `u32` element list — the allocation-light
/// emitter the sparse arena builder consumes directly.
pub fn random_subset_elems<R: rand::Rng + ?Sized>(
    rng: &mut R,
    capacity: usize,
    size: usize,
) -> Vec<u32> {
    assert!(
        size <= capacity,
        "cannot sample {size}-subset of [{capacity}]"
    );
    let mut s: std::collections::HashSet<usize> = std::collections::HashSet::with_capacity(size);
    // Floyd's sampling: for j = capacity-size .. capacity-1, insert a random
    // element of [0, j]; on collision insert j itself.
    for j in (capacity - size)..capacity {
        let x = rng.gen_range(0..=j);
        if !s.insert(x) {
            s.insert(j);
        }
    }
    let mut v: Vec<u32> = s.into_iter().map(|e| e as u32).collect();
    v.sort_unstable();
    v
}

/// Samples a subset of `{0,…,capacity-1}` including each element
/// independently with probability `p` (the element-sampling primitive of
/// Algorithm 1, step 3a).
pub fn bernoulli_subset<R: rand::Rng + ?Sized>(rng: &mut R, capacity: usize, p: f64) -> BitSet {
    if p >= 1.0 {
        return BitSet::full(capacity);
    }
    BitSet::from_iter(
        capacity,
        bernoulli_elems(rng, capacity, p)
            .into_iter()
            .map(|e| e as usize),
    )
}

/// [`bernoulli_subset`] as a sorted `u32` element list.
pub fn bernoulli_elems<R: rand::Rng + ?Sized>(rng: &mut R, capacity: usize, p: f64) -> Vec<u32> {
    if p <= 0.0 {
        return Vec::new();
    }
    if p >= 1.0 {
        return (0..capacity as u32).collect();
    }
    let mut v = Vec::new();
    for e in 0..capacity {
        if rng.gen_bool(p) {
            v.push(e as u32);
        }
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn new_is_empty() {
        let s = BitSet::new(100);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert_eq!(s.capacity(), 100);
    }

    #[test]
    fn full_has_all() {
        for n in [1, 63, 64, 65, 128, 130] {
            let s = BitSet::full(n);
            assert_eq!(s.len(), n, "capacity {n}");
            assert!(s.is_full());
            assert!((0..n).all(|e| s.contains(e)));
        }
    }

    #[test]
    fn zero_capacity_is_degenerate_but_safe() {
        let s = BitSet::new(0);
        assert!(s.is_empty());
        assert!(s.is_full()); // vacuously: len == capacity == 0
        assert_eq!(s.iter().count(), 0);
        let f = BitSet::full(0);
        assert_eq!(s, f);
    }

    #[test]
    fn insert_remove_contains() {
        let mut s = BitSet::new(130);
        assert!(s.insert(0));
        assert!(s.insert(64));
        assert!(s.insert(129));
        assert!(!s.insert(64)); // duplicate
        assert_eq!(s.len(), 3);
        assert!(s.contains(64));
        assert!(s.remove(64));
        assert!(!s.remove(64));
        assert!(!s.contains(64));
        assert_eq!(s.len(), 2);
    }

    #[test]
    #[should_panic(expected = "out of universe")]
    fn insert_out_of_range_panics() {
        BitSet::new(10).insert(10);
    }

    #[test]
    fn contains_out_of_range_is_false() {
        let s = BitSet::full(10);
        assert!(!s.contains(10));
        assert!(!s.contains(1000));
    }

    #[test]
    fn set_algebra_small() {
        let a = BitSet::from_iter(10, [1, 2, 3, 4]);
        let b = BitSet::from_iter(10, [3, 4, 5, 6]);
        assert_eq!(a.union(&b).to_vec(), vec![1, 2, 3, 4, 5, 6]);
        assert_eq!(a.intersection(&b).to_vec(), vec![3, 4]);
        assert_eq!(a.difference(&b).to_vec(), vec![1, 2]);
        assert_eq!(a.union_len(&b), 6);
        assert_eq!(a.intersection_len(&b), 2);
        assert_eq!(a.difference_len(&b), 2);
        assert_eq!(a.hamming_distance(&b), 4);
        assert!(!a.is_disjoint(&b));
        assert!(a.is_disjoint(&BitSet::from_iter(10, [7, 8])));
    }

    #[test]
    fn complement_roundtrip() {
        let a = BitSet::from_iter(70, [0, 69, 33]);
        let c = a.complement();
        assert_eq!(c.len(), 67);
        assert!(!c.contains(69));
        assert_eq!(c.complement(), a);
        // complement must not leak bits beyond capacity
        assert_eq!(a.union(&c), BitSet::full(70));
    }

    #[test]
    fn subset_relation() {
        let a = BitSet::from_iter(20, [1, 2]);
        let b = BitSet::from_iter(20, [1, 2, 3]);
        assert!(a.is_subset_of(&b));
        assert!(!b.is_subset_of(&a));
        assert!(a.is_subset_of(&a));
        assert!(BitSet::new(20).is_subset_of(&a));
    }

    #[test]
    fn iter_order_and_boundaries() {
        let elems = [0usize, 63, 64, 127, 128, 191];
        let s = BitSet::from_iter(192, elems);
        assert_eq!(s.to_vec(), elems.to_vec());
        assert_eq!(s.first(), Some(0));
    }

    #[test]
    fn random_subset_has_exact_size() {
        let mut rng = StdRng::seed_from_u64(7);
        for size in [0, 1, 10, 100, 256] {
            let s = random_subset(&mut rng, 256, size);
            assert_eq!(s.len(), size);
        }
    }

    #[test]
    fn random_subset_is_roughly_uniform() {
        // Each element should appear in ≈ trials·size/n samples.
        let mut rng = StdRng::seed_from_u64(42);
        let (n, size, trials) = (64, 16, 4000);
        let mut counts = vec![0u32; n];
        for _ in 0..trials {
            for e in random_subset(&mut rng, n, size).iter() {
                counts[e] += 1;
            }
        }
        let expected = trials as f64 * size as f64 / n as f64; // = 1000
        for (e, &c) in counts.iter().enumerate() {
            assert!(
                (c as f64 - expected).abs() < expected * 0.25,
                "element {e} appeared {c} times, expected ≈{expected}"
            );
        }
    }

    #[test]
    fn bernoulli_subset_edge_probabilities() {
        let mut rng = StdRng::seed_from_u64(3);
        assert!(bernoulli_subset(&mut rng, 100, 0.0).is_empty());
        assert!(bernoulli_subset(&mut rng, 100, 1.0).is_full());
        let s = bernoulli_subset(&mut rng, 10_000, 0.3);
        let frac = s.len() as f64 / 10_000.0;
        assert!((frac - 0.3).abs() < 0.05, "got {frac}");
    }

    #[test]
    fn stored_bits_accounting() {
        let s = BitSet::from_iter(1024, [0, 1, 2, 3]);
        // ⌈log₂ 1024⌉ = 10 bits per element.
        assert_eq!(s.stored_bits_sparse(), 40);
        assert_eq!(s.stored_bits_dense(), 1024);
    }

    #[test]
    #[should_panic(expected = "universe mismatch")]
    fn mixed_capacity_panics() {
        let a = BitSet::new(10);
        let b = BitSet::new(11);
        a.union_len(&b);
    }
}
