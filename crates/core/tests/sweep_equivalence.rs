//! Property tests: `BatchedSweep` gains must match the per-set
//! `intersection_len` kernel bit-for-bit across every pairing of stored
//! representation (sparse / dense / chunked / Elias–Fano arenas) and
//! residual representation (dense bitmap view, sparse list view, and the
//! compressed views), on arbitrary systems.

use proptest::prelude::*;
use streamcover_core::{BatchedSweep, BitSet, KernelTier, ReprPolicy, SetStore};

/// Every storage policy the sweep must be bit-equal under.
const POLICIES: [ReprPolicy; 5] = [
    ReprPolicy::ForceSparse,
    ReprPolicy::ForceDense,
    ReprPolicy::ForceChunked,
    ReprPolicy::ForceEliasFano,
    ReprPolicy::Auto,
];

/// Strategy: `(universe, element lists, residual elements)`.
fn arb_instance() -> impl Strategy<Value = (usize, Vec<Vec<usize>>, Vec<usize>)> {
    (1usize..160, 0usize..14).prop_flat_map(|(n, m)| {
        (
            Just(n),
            proptest::collection::vec(proptest::collection::vec(0usize..n, 0..n), m),
            proptest::collection::vec(0usize..n, 0..n),
        )
    })
}

fn store_of(policy: ReprPolicy, n: usize, lists: &[Vec<usize>]) -> SetStore {
    let mut st = SetStore::with_policy(n, policy);
    for l in lists {
        st.push_elems(l.iter().copied());
    }
    st
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sweep_matches_per_set_kernel_across_all_repr_pairings(inst in arb_instance()) {
        let (n, lists, resid) = inst;
        let residual = BitSet::from_iter(n, resid.iter().copied());
        // Residual as a view in every forced representation, via one-set
        // stores (index 4 is Auto — skipped; the dense view covers it).
        let rstores: Vec<SetStore> = POLICIES[..4]
            .iter()
            .map(|&p| {
                let mut st = SetStore::with_policy(n, p);
                st.push_elems(residual.iter());
                st
            })
            .collect();

        for policy in POLICIES {
            let st = store_of(policy, n, &lists);
            let expect: Vec<usize> = (0..st.len())
                .map(|i| st.get(i).intersection_len(residual.as_set_ref()))
                .collect();
            let mut sweep = BatchedSweep::new();
            // Dense residual: the columnar arena walk.
            prop_assert_eq!(sweep.gains(&st, &residual), &expect[..]);
            // Dense residual as a SetRef view.
            prop_assert_eq!(sweep.gains_vs_ref(&st, residual.as_set_ref()), &expect[..]);
            // Residual in every stored representation: dispatches to the
            // pairwise kernels (the full 4×4 matrix over the runs).
            for rs in &rstores {
                prop_assert_eq!(sweep.gains_vs_ref(&st, rs.get(0)), &expect[..]);
            }
            // Subset sweep over the reversed id order.
            let ids: Vec<usize> = (0..st.len()).rev().collect();
            let expect_rev: Vec<usize> = ids.iter().map(|&i| expect[i]).collect();
            prop_assert_eq!(sweep.gains_for(&st, &ids, &residual), &expect_rev[..]);
        }
    }

    #[test]
    fn sweep_matches_scalar_reference_under_every_forced_tier(inst in arb_instance()) {
        // The forced-tier knob: the same sweep shapes as above, but with
        // the kernel tier pinned — every *supported* tier must reproduce
        // the Scalar tier byte-for-byte; unsupported tiers are skipped
        // with an explicit log line, never silently.
        let (n, lists, resid) = inst;
        let residual = BitSet::from_iter(n, resid.iter().copied());
        let mut rstore = SetStore::with_policy(n, ReprPolicy::ForceSparse);
        rstore.push_elems(residual.iter());
        let rsparse = rstore.get(0);

        for policy in POLICIES {
            let st = store_of(policy, n, &lists);
            let reference = BatchedSweep::with_tier(KernelTier::Scalar)
                .gains(&st, &residual)
                .to_vec();
            for tier in KernelTier::ALL {
                if !tier.is_supported() {
                    eprintln!(
                        "skipping kernel tier {}: not supported on this CPU (detected {})",
                        tier.name(),
                        KernelTier::detect().name()
                    );
                    continue;
                }
                let mut sweep = BatchedSweep::with_tier(tier);
                prop_assert_eq!(sweep.gains(&st, &residual), &reference[..],
                    "dense residual, tier {}", tier.name());
                prop_assert_eq!(sweep.gains_vs_ref(&st, residual.as_set_ref()), &reference[..],
                    "dense view residual, tier {}", tier.name());
                prop_assert_eq!(sweep.gains_vs_ref(&st, rsparse), &reference[..],
                    "sparse residual, tier {}", tier.name());
                let ids: Vec<usize> = (0..st.len()).rev().collect();
                let expect_rev: Vec<usize> = ids.iter().map(|&i| reference[i]).collect();
                prop_assert_eq!(sweep.gains_for(&st, &ids, &residual), &expect_rev[..],
                    "gains_for, tier {}", tier.name());
                if !st.is_empty() {
                    prop_assert_eq!(sweep.gains_span(&st, 0..st.len() - 1, &residual),
                        &reference[..st.len() - 1],
                        "gains_span, tier {}", tier.name());
                }
            }
        }
    }

    #[test]
    fn sweep_best_matches_eager_argmax(inst in arb_instance()) {
        let (n, lists, resid) = inst;
        let residual = BitSet::from_iter(n, resid.iter().copied());
        let st = store_of(ReprPolicy::Auto, n, &lists);
        let mut sweep = BatchedSweep::new();
        sweep.gains(&st, &residual);
        // Reference argmax with the greedy tie-break (largest gain, then
        // smallest id), None when every gain is zero.
        let mut expect: Option<(usize, usize)> = None;
        for i in 0..st.len() {
            let g = st.get(i).intersection_len(residual.as_set_ref());
            match expect {
                Some((_, b)) if b >= g => {}
                _ if g > 0 => expect = Some((i, g)),
                _ => {}
            }
        }
        prop_assert_eq!(sweep.best(), expect);
    }
}
