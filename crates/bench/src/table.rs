//! Plain-text result tables — the output format of every experiment, echoed
//! by the `tables` binary and recorded in EXPERIMENTS.md.

use std::fmt;

/// A rendered experiment result.
#[derive(Clone, Debug)]
pub struct Table {
    /// Experiment id + description, e.g. `"E1 — Theorem 2 tradeoff"`.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (stringified by the experiment).
    pub rows: Vec<Vec<String>>,
    /// Free-form notes (paper reference, caveats).
    pub notes: Vec<String>,
}

impl Table {
    /// Creates an empty table with headers.
    pub fn new(title: impl Into<String>, headers: &[&str]) -> Self {
        Table {
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Appends a row; must match the header arity.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(
            cells.len(),
            self.headers.len(),
            "row arity mismatch in {}",
            self.title
        );
        self.rows.push(cells);
    }

    /// Appends a note line.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }
}

impl fmt::Display for Table {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "## {}", self.title)?;
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, c) in row.iter().enumerate() {
                widths[i] = widths[i].max(c.len());
            }
        }
        let line = |f: &mut fmt::Formatter<'_>, cells: &[String]| -> fmt::Result {
            write!(f, "|")?;
            for (i, c) in cells.iter().enumerate() {
                write!(f, " {:<w$} |", c, w = widths[i])?;
            }
            writeln!(f)
        };
        line(f, &self.headers)?;
        let sep: Vec<String> = widths.iter().map(|w| "-".repeat(*w)).collect();
        line(f, &sep)?;
        for row in &self.rows {
            line(f, row)?;
        }
        for n in &self.notes {
            writeln!(f, "  note: {n}")?;
        }
        Ok(())
    }
}

/// Formats a float compactly for table cells.
pub fn fnum(x: f64) -> String {
    if x == 0.0 {
        return "0".into();
    }
    let a = x.abs();
    if !(1e-3..1e6).contains(&a) {
        format!("{x:.2e}")
    } else if a >= 100.0 {
        format!("{x:.0}")
    } else if a >= 1.0 {
        format!("{x:.2}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn renders_aligned() {
        let mut t = Table::new("E0 — demo", &["a", "long-header"]);
        t.row(vec!["1".into(), "2".into()]);
        t.note("hello");
        let s = t.to_string();
        assert!(s.contains("## E0 — demo"));
        assert!(s.contains("| a | long-header |"));
        assert!(s.contains("note: hello"));
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut t = Table::new("x", &["a", "b"]);
        t.row(vec!["1".into()]);
    }

    #[test]
    fn fnum_ranges() {
        assert_eq!(fnum(0.0), "0");
        assert_eq!(fnum(1234567.0), "1.23e6");
        assert_eq!(fnum(123.4), "123");
        assert_eq!(fnum(1.5), "1.50");
        assert_eq!(fnum(0.25), "0.2500");
        assert_eq!(fnum(0.0001), "1.00e-4");
    }
}
