//! Run reports and the common interface all streaming set cover algorithms
//! implement, so the benchmark harness can sweep them uniformly.
//!
//! Execution is configured in exactly one place: the
//! [`run_in`](SetCoverStreamer::run_in) entry point takes the [`Runtime`]
//! to execute on and the [`ExecPolicy`] describing every knob (fan-out
//! widths, storage policy, accounting, seed). The legacy
//! [`run`](SetCoverStreamer::run) methods are provided shims that delegate
//! to the lazily-initialized sequential runtime under the sequential
//! policy — byte-for-byte the single-threaded behavior.

use crate::runtime::{ExecPolicy, Runtime};
use crate::stream::Arrival;
use rand::rngs::StdRng;
use streamcover_core::{SetId, SetSystem};

/// Outcome of one streaming set cover run.
#[derive(Clone, Debug)]
pub struct CoverRun {
    /// Name of the algorithm that produced this run.
    pub algorithm: &'static str,
    /// Chosen set ids (instance coordinates).
    pub solution: Vec<SetId>,
    /// Whether the solution covers the universe.
    pub feasible: bool,
    /// Passes made over the stream (max across parallel branches).
    pub passes: usize,
    /// Peak working-memory bits (summed across parallel branches).
    pub peak_bits: u64,
}

impl CoverRun {
    /// Number of sets in the solution.
    pub fn size(&self) -> usize {
        self.solution.len()
    }

    /// Approximation ratio against a known optimum. `NaN` if infeasible or
    /// `opt == 0`.
    pub fn ratio(&self, opt: usize) -> f64 {
        if !self.feasible || opt == 0 {
            return f64::NAN;
        }
        self.size() as f64 / opt as f64
    }
}

/// A streaming set cover algorithm: consumes a set system through the
/// pass-counting stream substrate and reports solution, passes and peak
/// bits.
pub trait SetCoverStreamer {
    /// Short stable name for tables.
    fn name(&self) -> &'static str;

    /// Runs the algorithm on `rt` under `policy`. The determinism contract
    /// every implementation upholds: solution, passes and peak bits are
    /// identical to the sequential run at every fan-out width and pool
    /// size, and across repeated runtime reuse.
    fn run_in(
        &self,
        rt: &Runtime,
        policy: &ExecPolicy,
        sys: &SetSystem,
        arrival: Arrival,
        rng: &mut StdRng,
    ) -> CoverRun;

    /// Runs the algorithm sequentially: delegates to the lazily-initialized
    /// shared sequential [`Runtime`] under [`ExecPolicy::sequential`].
    fn run(&self, sys: &SetSystem, arrival: Arrival, rng: &mut StdRng) -> CoverRun {
        self.run_in(
            Runtime::sequential(),
            &ExecPolicy::sequential(),
            sys,
            arrival,
            rng,
        )
    }
}

/// Outcome of one streaming maximum coverage run.
#[derive(Clone, Debug)]
pub struct MaxCoverRun {
    /// Name of the algorithm.
    pub algorithm: &'static str,
    /// Chosen set ids (≤ k).
    pub chosen: Vec<SetId>,
    /// True coverage of the chosen sets (computed offline for reporting).
    pub coverage: usize,
    /// Passes made.
    pub passes: usize,
    /// Peak working-memory bits.
    pub peak_bits: u64,
}

impl MaxCoverRun {
    /// Fraction of a known optimum achieved. `NaN` when `opt == 0`.
    pub fn ratio(&self, opt: usize) -> f64 {
        if opt == 0 {
            return f64::NAN;
        }
        self.coverage as f64 / opt as f64
    }
}

/// A streaming maximum `k`-coverage algorithm.
pub trait MaxCoverStreamer {
    /// Short stable name for tables.
    fn name(&self) -> &'static str;

    /// Runs the algorithm on `rt` under `policy`; must return at most `k`
    /// set ids. Same determinism contract as
    /// [`SetCoverStreamer::run_in`].
    fn run_in(
        &self,
        rt: &Runtime,
        policy: &ExecPolicy,
        sys: &SetSystem,
        k: usize,
        arrival: Arrival,
        rng: &mut StdRng,
    ) -> MaxCoverRun;

    /// Runs the algorithm sequentially: delegates to the lazily-initialized
    /// shared sequential [`Runtime`] under [`ExecPolicy::sequential`].
    fn run(&self, sys: &SetSystem, k: usize, arrival: Arrival, rng: &mut StdRng) -> MaxCoverRun {
        self.run_in(
            Runtime::sequential(),
            &ExecPolicy::sequential(),
            sys,
            k,
            arrival,
            rng,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cover_run_ratio() {
        let r = CoverRun {
            algorithm: "x",
            solution: vec![1, 2, 3, 4],
            feasible: true,
            passes: 3,
            peak_bits: 10,
        };
        assert_eq!(r.size(), 4);
        assert!((r.ratio(2) - 2.0).abs() < 1e-12);
        assert!(r.ratio(0).is_nan());
        let bad = CoverRun {
            feasible: false,
            ..r
        };
        assert!(bad.ratio(2).is_nan());
    }

    #[test]
    fn maxcover_run_ratio() {
        let r = MaxCoverRun {
            algorithm: "x",
            chosen: vec![0],
            coverage: 30,
            passes: 1,
            peak_bits: 5,
        };
        assert!((r.ratio(60) - 0.5).abs() < 1e-12);
        assert!(r.ratio(0).is_nan());
    }
}
