//! Maximum coverage experiments: E6 (Lemma 4.3 gap), E7 (Result 2 tightness
//! / element sampling space), plus the streaming max-cover algorithm
//! comparison used by the examples.

use crate::table::{fnum, Table};
use crate::Scale;
use rand::rngs::StdRng;
use rand::SeedableRng;
use streamcover_core::exact_max_coverage;
use streamcover_dist::{blog_watch, sample_dmc_with_theta, McParams};
use streamcover_stream::maxcov::element_sampling::element_sample_for;
use streamcover_stream::{
    Arrival, ElementSampling, MaxCoverStreamer, McOracle, SahaGetoorSwap, SieveStream,
};

/// E6 — Lemma 4.3: on `D_MC`, the optimal 2-coverage separates by
/// `(1 ± Θ(ε))·τ` across `θ`, so a `(1−ε)`-approximation decides `θ`.
pub fn e6_maxcover_gap(scale: Scale, seed: u64) -> Table {
    let trials = if scale.full { 40 } else { 10 };
    let m = if scale.full { 10 } else { 6 };
    let mut rng = StdRng::seed_from_u64(seed);
    let mut t = Table::new(
        format!("E6 — Lemma 4.3 MaxCover gap (k=2, m={m}, {trials} trials/branch)"),
        &[
            "ε",
            "τ",
            "max opt (θ=0)",
            "min opt (θ=1)",
            "separated",
            "gap_pred=√t₁",
        ],
    );
    for eps in [0.25, 0.125, 0.0884] {
        let p = McParams::for_epsilon(m, eps);
        let mut max0 = 0usize;
        let mut min1 = usize::MAX;
        for _ in 0..trials {
            let i0 = sample_dmc_with_theta(&mut rng, p, false);
            let (_, opt0) = exact_max_coverage(&i0.combined(), 2);
            max0 = max0.max(opt0);
            let i1 = sample_dmc_with_theta(&mut rng, p, true);
            let (_, opt1) = exact_max_coverage(&i1.combined(), 2);
            min1 = min1.min(opt1);
        }
        t.row(vec![
            fnum(eps),
            fnum(p.tau()),
            max0.to_string(),
            min1.to_string(),
            (max0 < min1).to_string(),
            fnum(2.0 * p.gap()),
        ]);
    }
    t.note(
        "Lemma 4.3: opt ≤ (1−Θ(ε))τ under θ=0 and ≥ (1+Θ(ε))τ under θ=1 — 'separated' must be true",
    );
    t
}

/// E7 — Result 2 tightness: element-sampling `(1−ε)` k-cover space scales
/// as `m·k/ε²`; Lemma 3.12's sampled covers lift to `(1−ρ)`-covers.
pub fn e7_element_sampling(scale: Scale, seed: u64) -> Table {
    let (n, m) = if scale.full {
        (65_536, 16)
    } else {
        (32_768, 10)
    };
    let k = 2;
    let mut rng = StdRng::seed_from_u64(seed);
    let sys = streamcover_dist::uniform_random(&mut rng, n, m, 0.03, false);
    let (_, opt) = exact_max_coverage(&sys, k);

    let mut t = Table::new(
        format!("E7 — element-sampling space vs ε (n={n}, m={m}, k={k})"),
        &["ε", "peak_bits", "bits·ε²/m", "coverage/opt", "passes"],
    );
    let mut prev_scaled: Option<f64> = None;
    for eps in [0.4, 0.2, 0.1] {
        let algo = ElementSampling {
            oracle: McOracle::Greedy,
            ..ElementSampling::new(eps)
        };
        let run = algo.run(&sys, k, Arrival::Adversarial, &mut rng);
        let scaled = run.peak_bits as f64 * eps * eps / m as f64;
        t.row(vec![
            fnum(eps),
            run.peak_bits.to_string(),
            fnum(scaled),
            fnum(run.ratio(opt)),
            run.passes.to_string(),
        ]);
        prev_scaled = Some(scaled);
    }
    let _ = prev_scaled;
    t.note("Result 2: Ω̃(m/ε²) is necessary; the bits·ε²/m column flattens once the sampling rate is uncapped");

    // Lemma 3.12 lift success rates: the probe collection is an exact
    // *minimum* cover of the sample (≤ k sets whenever one exists) — the
    // adversarial candidate the lemma quantifies over, with no bias toward
    // covering all of [n].
    let trials = if scale.full { 60 } else { 20 };
    let w = streamcover_dist::planted_cover(&mut rng, 4096, 24, 4);
    for rho in [0.2, 0.1, 0.05] {
        let mut lifted = 0usize;
        let mut applicable = 0usize;
        for _ in 0..trials {
            let (u_smpl, _) = element_sample_for(&mut rng, 4096, 24, 4, rho);
            let proj = w.system.project(&u_smpl);
            let (ids, complete) = streamcover_core::budgeted_cover_of(&proj, &u_smpl, 500_000);
            let Ok(ids) = ids else { continue };
            if complete && ids.len() <= 4 {
                applicable += 1;
                if w.system.coverage_len(&ids) as f64 >= (1.0 - rho) * 4096.0 {
                    lifted += 1;
                }
            }
        }
        t.row(vec![
            format!("ρ={rho} (Lemma 3.12)"),
            format!("{applicable} applicable"),
            format!("{lifted} lifted"),
            fnum(if applicable > 0 {
                lifted as f64 / applicable as f64
            } else {
                f64::NAN
            }),
            "-".into(),
        ]);
    }
    t.note("Lemma 3.12: every k-collection covering the sample lifts to a (1−ρ)-cover of [n] w.p. ≥ 1−1/m²; probed with the exact minimum sample-cover");
    t
}

/// Extra table for the README/examples: the three streaming max-coverage
/// algorithms on the blog-watch workload.
pub fn maxcover_algorithms(scale: Scale, seed: u64) -> Table {
    let (topics, blogs) = if scale.full { (128, 400) } else { (64, 150) };
    let k = 4;
    let mut rng = StdRng::seed_from_u64(seed);
    let sys = blog_watch(&mut rng, topics, blogs);
    let (_, opt) = exact_max_coverage(&sys, k);
    let mut t = Table::new(
        format!(
            "MaxCover algorithms on blog-watch (topics={topics}, blogs={blogs}, k={k}, opt={opt})"
        ),
        &[
            "algorithm",
            "coverage",
            "ratio",
            "guarantee",
            "passes",
            "peak_bits",
        ],
    );
    let algos: Vec<(Box<dyn MaxCoverStreamer>, &'static str)> = vec![
        (Box::new(ElementSampling::new(0.2)), "1−ε (ε=0.2)"),
        (Box::new(SieveStream::new(0.1)), "1/2−ε"),
        (Box::new(SahaGetoorSwap), "1/4"),
    ];
    for (algo, guarantee) in algos {
        let run = algo.run(&sys, k, Arrival::Adversarial, &mut rng);
        t.row(vec![
            run.algorithm.to_string(),
            run.coverage.to_string(),
            fnum(run.ratio(opt)),
            guarantee.to_string(),
            run.passes.to_string(),
            run.peak_bits.to_string(),
        ]);
    }
    t
}
