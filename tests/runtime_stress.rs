//! Scheduler stress battery for the lock-split work-stealing `Runtime`:
//! nested scopes under concurrent external submitters, panic propagation
//! while thieves are mid-steal, shutdown racing the backoff/park protocol,
//! and a property test interleaving spawn/steal/park across pool widths —
//! all asserting **no task is lost and none runs twice** via per-task
//! completion counters.

use proptest::prelude::*;
use proptest::TestCaseError;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Barrier};
use streamcover::prelude::Runtime;

/// Per-task exactly-once ledger: one counter per task; every counter must
/// end at exactly 1.
fn assert_exactly_once(counters: &[AtomicUsize], context: &str) {
    for (i, c) in counters.iter().enumerate() {
        let runs = c.load(Ordering::SeqCst);
        assert_eq!(runs, 1, "{context}: task {i} ran {runs} times (want 1)");
    }
}

#[test]
fn nested_scopes_under_concurrent_external_submitters() {
    // One shared pool; 4 external OS threads each drive nested fan-outs
    // into it concurrently. Injection (external), owner pushes (nested
    // spawns from workers), stealing, and submitter-helping all interleave.
    let rt = Arc::new(Runtime::new(4));
    let submitters = 4usize;
    let outer = 6usize;
    let inner = 9usize;
    let counters: Arc<Vec<AtomicUsize>> = Arc::new(
        (0..submitters * outer * inner)
            .map(|_| AtomicUsize::new(0))
            .collect(),
    );
    let barrier = Arc::new(Barrier::new(submitters));
    let handles: Vec<_> = (0..submitters)
        .map(|s| {
            let rt = Arc::clone(&rt);
            let counters = Arc::clone(&counters);
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                barrier.wait(); // all submitters hit the pool at once
                let outer_ids: Vec<usize> = (0..outer).collect();
                let sums = rt.map_parts(&outer_ids, |&o| {
                    let inner_ids: Vec<usize> = (0..inner).collect();
                    rt.map_parts(&inner_ids, |&i| {
                        let id = (s * outer + o) * inner + i;
                        counters[id].fetch_add(1, Ordering::SeqCst);
                        id
                    })
                    .into_iter()
                    .sum::<usize>()
                });
                // Each outer part's sum is the arithmetic series of its ids.
                for (o, got) in sums.iter().enumerate() {
                    let base = (s * outer + o) * inner;
                    let expect = (base..base + inner).sum::<usize>();
                    assert_eq!(*got, expect, "submitter {s}, outer {o}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("submitter thread panicked");
    }
    assert_exactly_once(&counters, "nested × concurrent submitters");
}

#[test]
fn panic_propagation_mid_steal() {
    // Many tasks, a few panickers scattered among them, at a width where
    // thieves are guaranteed to be stealing when panics fire. The scope
    // must resurface a panic AND still run every task exactly once (a
    // panicking sibling never cancels queued work — determinism of the
    // completion set is what the solvers rely on).
    let rt = Runtime::new(8);
    for round in 0..20 {
        let total = 64usize;
        let counters: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
        let err = catch_unwind(AssertUnwindSafe(|| {
            rt.scope(|s| {
                for (id, c) in counters.iter().enumerate() {
                    s.spawn(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                        if id % 17 == 3 {
                            panic!("mid-steal panic {id}");
                        }
                    });
                }
            });
        }))
        .expect_err("a panicking task must surface");
        let msg = err
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
            .unwrap_or_default();
        assert!(
            msg.contains("mid-steal panic"),
            "round {round}: unexpected payload {msg:?}"
        );
        // 64 tasks, panickers at 3, 20, 37, 54 → 3 suppressed siblings.
        assert!(
            msg.contains("3 additional task panic(s) suppressed"),
            "round {round}: suppressed count missing from {msg:?}"
        );
        assert_exactly_once(&counters, "panic round");
    }
    // The pool survives all 20 panicking rounds.
    assert_eq!(rt.map_parts(&[1, 2, 3], |&p: &i32| p + 1), vec![2, 3, 4]);
}

#[test]
fn shutdown_races_backoff_and_park() {
    // Drop the runtime at every phase a worker can be in — mid-run,
    // mid-backoff (immediately after work), and parked (after a sleep) —
    // across widths. Every spawned task still runs exactly once (scopes
    // drain before drop can begin), and every drop joins cleanly.
    for workers in [2usize, 3, 5, 9] {
        for pause_us in [0u64, 50, 500] {
            let rt = Runtime::new(workers);
            let total = 128usize;
            let counters: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
            rt.scope(|s| {
                for c in &counters {
                    s.spawn(move || {
                        c.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
            if pause_us > 0 {
                // Let workers fall through backoff into the parked state
                // so drop exercises the park/wake path too.
                std::thread::sleep(std::time::Duration::from_micros(pause_us));
            }
            drop(rt); // must join all workers without hanging or leaking
            assert_exactly_once(&counters, "shutdown race");
        }
    }
}

#[test]
fn external_submission_storm_from_many_threads() {
    // Pure injector-ring pressure: more submitters than workers, each
    // pushing bursts big enough to overflow the rings (the overflow path
    // runs inline on the submitter — still exactly once).
    let rt = Arc::new(Runtime::new(2)); // 1 pool worker → 1 ring to storm
    let submitters = 6usize;
    let per = 600usize; // > 2× the ring capacity, per submitter
    let counters: Arc<Vec<AtomicUsize>> =
        Arc::new((0..submitters * per).map(|_| AtomicUsize::new(0)).collect());
    let handles: Vec<_> = (0..submitters)
        .map(|s| {
            let rt = Arc::clone(&rt);
            let counters = Arc::clone(&counters);
            std::thread::spawn(move || {
                rt.scope(|sc| {
                    for i in 0..per {
                        let counters = Arc::clone(&counters);
                        sc.spawn(move || {
                            counters[s * per + i].fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            })
        })
        .collect();
    for h in handles {
        h.join().expect("submitter panicked");
    }
    assert_exactly_once(&counters, "submission storm");
}

/// Random interleavings of spawn (external and nested), steal, and park at
/// one pool width: a random tree of scopes is submitted and every leaf
/// task must complete exactly once. Worker parking is forced into the mix
/// by making some tasks sleep (draining the queues so peers park) and some
/// spawn bursts (waking them).
fn check_interleaving(workers: usize, shape: Vec<(usize, usize)>) -> Result<(), TestCaseError> {
    let rt = Runtime::new(workers);
    let total: usize = shape.iter().map(|&(leaves, _)| leaves).sum();
    let counters: Vec<AtomicUsize> = (0..total).map(|_| AtomicUsize::new(0)).collect();
    let mut base = 0usize;
    rt.scope(|s| {
        for &(leaves, style) in &shape {
            let my_base = base;
            base += leaves;
            let counters = &counters;
            let rt = &rt;
            s.spawn(move || {
                match style {
                    // Burst: nested fan-out from a worker (owner pushes).
                    0 => {
                        let ids: Vec<usize> = (0..leaves).collect();
                        rt.map_parts(&ids, |&i| {
                            counters[my_base + i].fetch_add(1, Ordering::SeqCst);
                        });
                    }
                    // Slow leaf chain: drains peers into park, then
                    // spawns (forcing unpark on a parked pool).
                    1 => {
                        std::thread::sleep(std::time::Duration::from_micros(200));
                        rt.scope(|inner| {
                            for i in 0..leaves {
                                inner.spawn(move || {
                                    counters[my_base + i].fetch_add(1, Ordering::SeqCst);
                                });
                            }
                        });
                    }
                    // Inline run on the task itself.
                    _ => {
                        for i in 0..leaves {
                            counters[my_base + i].fetch_add(1, Ordering::SeqCst);
                        }
                    }
                }
            });
        }
    });
    for (i, c) in counters.iter().enumerate() {
        prop_assert_eq!(
            c.load(Ordering::SeqCst),
            1,
            "task {} (workers {})",
            i,
            workers
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn spawn_steal_park_interleavings_lose_nothing(
        workers in 2usize..9,
        shape in proptest::collection::vec((1usize..24, 0usize..3), 1..12),
    ) {
        check_interleaving(workers, shape)?;
    }
}
