//! Sharded arena storage: a set system split into per-shard [`SetStore`]
//! arenas for parallel construction, per-shard sweeps, and (eventually)
//! NUMA-friendly placement.
//!
//! A [`ShardedStore`] is addressed by a `(shard, local)` descriptor split
//! instead of one flat set id; the partition is chosen by a [`ShardPlan`]:
//!
//! * [`ShardPlan::BySetRange`] — shard `s` owns a contiguous range of set
//!   ids. Each logical set lives whole in exactly one shard, so this is the
//!   plan for fan-out over *sets* (parallel construction, per-shard
//!   candidate sweeps). The global id order is the concatenation of the
//!   shards.
//! * [`ShardPlan::ByUniverseBlocks`] — shard `b` owns the projection of
//!   *every* set onto the `b`-th contiguous block of the universe. A
//!   logical set is the union of its per-block pieces (block ranges are
//!   increasing and disjoint, so concatenating the sorted pieces
//!   reconstructs the sorted element list). This is the plan for fan-out
//!   over *elements* — per-block residual work, the shape of
//!   `ParallelPass`'s block-partitioned refine.
//!
//! Conversions to and from the flat representation live on
//! [`crate::SetSystem`] (`into_sharded` / `from_shards`), built on the same
//! `subsystem`/`project` machinery the streaming algorithms already use;
//! both round-trip to a semantically equal system under every plan and
//! every [`ReprPolicy`]. For read-only fan-out without copying any arena,
//! [`crate::SetSystem::shards`] hands out zero-copy [`StoreShard`] views
//! over the single flat arena.

use crate::bitset::BitSet;
use crate::store::{BatchedSweep, ReprPolicy, SetRef, SetStore};
use crate::system::SetId;
use std::ops::Range;

/// How a set system is partitioned into per-shard arenas.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardPlan {
    /// Contiguous set-id ranges: shard `s` holds sets
    /// `[s·⌈m/shards⌉ …)` whole. Shard counts are clamped to `[1, m]`.
    BySetRange {
        /// Requested number of shards.
        shards: usize,
    },
    /// Contiguous universe blocks: every shard holds all `m` sets,
    /// projected onto its element range. Block counts are clamped to
    /// `[1, n]`.
    ByUniverseBlocks {
        /// Requested number of blocks.
        blocks: usize,
    },
}

impl ShardPlan {
    /// The number of shards this plan actually produces on an `m`-set
    /// system over `[n]` (requested counts are clamped so no shard is
    /// degenerate beyond necessity; at least one shard always exists).
    pub fn shard_count(self, m: usize, n: usize) -> usize {
        match self {
            ShardPlan::BySetRange { shards } => shards.clamp(1, m.max(1)),
            ShardPlan::ByUniverseBlocks { blocks } => blocks.clamp(1, n.max(1)),
        }
    }
}

/// Splits `0..len` into `parts` contiguous near-equal ranges (the first
/// `len % parts` ranges are one longer; trailing ranges may be empty when
/// `parts > len`, but every range stays inside `0..len`). The partition
/// arithmetic behind every fan-out in the workspace — pair it with
/// [`map_parts`] instead of hand-rolling ceil-chunk bounds, which can
/// produce inverted out-of-range windows when `parts` does not divide
/// `len`.
pub fn split_ranges(len: usize, parts: usize) -> Vec<Range<usize>> {
    let parts = parts.max(1);
    let (base, extra) = (len / parts, len % parts);
    let mut out = Vec::with_capacity(parts);
    let mut pos = 0;
    for i in 0..parts {
        let size = base + usize::from(i < extra);
        out.push(pos..pos + size);
        pos += size;
    }
    out
}

/// A set system stored as per-shard arenas under a [`ShardPlan`].
///
/// Every shard is a plain [`SetStore`] over the *full* universe (element
/// labels stay global), so shard-local reads return ordinary [`SetRef`]
/// views and all the representation-specialized kernels apply unchanged.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardedStore {
    plan: ShardPlan,
    universe: usize,
    policy: ReprPolicy,
    shards: Vec<SetStore>,
    /// Element range per shard under `ByUniverseBlocks`; empty otherwise.
    blocks: Vec<Range<usize>>,
}

impl ShardedStore {
    /// Parallel construction from strictly increasing element lists on the
    /// shared default [`Runtime`](crate::runtime::Runtime): each shard's
    /// arena is one pooled work item (see
    /// [`from_sorted_lists_in`](Self::from_sorted_lists_in)).
    ///
    /// Under `BySetRange`, shard `s` pushes its id range of `lists`; under
    /// `ByUniverseBlocks`, shard `b` pushes the sub-slice of *every* list
    /// falling in its element block (a `partition_point` pair per list —
    /// the lists are sorted, so no per-element scan).
    ///
    /// # Panics
    /// Panics if any list violates [`SetStore::push_sorted`]'s contract.
    pub fn from_sorted_lists(
        universe: usize,
        policy: ReprPolicy,
        plan: ShardPlan,
        lists: &[Vec<u32>],
    ) -> Self {
        Self::from_sorted_lists_in(
            crate::runtime::Runtime::global(),
            universe,
            policy,
            plan,
            lists,
        )
    }

    /// [`from_sorted_lists`](Self::from_sorted_lists) on an explicit
    /// runtime: the per-shard builds are submitted to `rt`'s persistent
    /// pool instead of spawning scoped threads per call. The constructed
    /// store is identical for every pool size.
    ///
    /// # Panics
    /// Panics if any list violates [`SetStore::push_sorted`]'s contract.
    pub fn from_sorted_lists_in(
        rt: &crate::runtime::Runtime,
        universe: usize,
        policy: ReprPolicy,
        plan: ShardPlan,
        lists: &[Vec<u32>],
    ) -> Self {
        let k = plan.shard_count(lists.len(), universe);
        match plan {
            ShardPlan::BySetRange { .. } => {
                let ranges = split_ranges(lists.len(), k);
                let build = |r: &Range<usize>| {
                    let mut st = SetStore::with_policy(universe, policy);
                    for l in &lists[r.clone()] {
                        st.push_sorted(l);
                    }
                    st
                };
                let shards = rt.map_parts(&ranges, build);
                ShardedStore {
                    plan: ShardPlan::BySetRange { shards: k },
                    universe,
                    policy,
                    shards,
                    blocks: Vec::new(),
                }
            }
            ShardPlan::ByUniverseBlocks { .. } => {
                let blocks = split_ranges(universe, k);
                let build = |b: &Range<usize>| {
                    let mut st = SetStore::with_policy(universe, policy);
                    for l in lists {
                        let lo = l.partition_point(|&e| (e as usize) < b.start);
                        let hi = l.partition_point(|&e| (e as usize) < b.end);
                        st.push_sorted(&l[lo..hi]);
                    }
                    st
                };
                let shards = rt.map_parts(&blocks, build);
                ShardedStore {
                    plan: ShardPlan::ByUniverseBlocks { blocks: k },
                    universe,
                    policy,
                    shards,
                    blocks,
                }
            }
        }
    }

    /// Assembles a `ByUniverseBlocks` store from per-block projection
    /// arenas (each holding all `m` sets projected onto its block) — the
    /// seam `SetSystem::into_sharded` builds through `project`.
    pub(crate) fn from_block_stores(
        universe: usize,
        policy: ReprPolicy,
        stores: Vec<SetStore>,
        blocks: Vec<Range<usize>>,
    ) -> Self {
        assert_eq!(stores.len(), blocks.len(), "one arena per block");
        assert!(!stores.is_empty(), "need at least one block arena");
        debug_assert!(stores.windows(2).all(|w| w[0].len() == w[1].len()));
        ShardedStore {
            plan: ShardPlan::ByUniverseBlocks {
                blocks: blocks.len(),
            },
            universe,
            policy,
            shards: stores,
            blocks,
        }
    }

    /// Assembles a `BySetRange` store from already-built shard arenas — the
    /// seam `ParallelPass::store_pass` merges its per-worker arenas
    /// through. Shard `s`'s sets get the global ids following shard
    /// `s−1`'s.
    ///
    /// # Panics
    /// Panics if `stores` is empty or any store's universe differs.
    pub fn from_shard_stores(universe: usize, policy: ReprPolicy, stores: Vec<SetStore>) -> Self {
        assert!(!stores.is_empty(), "need at least one shard arena");
        for s in &stores {
            assert_eq!(
                s.universe(),
                universe,
                "shard universe mismatch: {} vs {universe}",
                s.universe()
            );
        }
        ShardedStore {
            plan: ShardPlan::BySetRange {
                shards: stores.len(),
            },
            universe,
            policy,
            shards: stores,
            blocks: Vec::new(),
        }
    }

    /// The (normalized) partition plan.
    pub fn plan(&self) -> ShardPlan {
        self.plan
    }

    /// Universe size `n`.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// The representation policy new sets are inserted under.
    pub fn policy(&self) -> ReprPolicy {
        self.policy
    }

    /// Number of shards.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// The per-shard arenas, in shard order.
    pub fn shards(&self) -> &[SetStore] {
        &self.shards
    }

    /// One shard's arena.
    pub fn shard(&self, s: usize) -> &SetStore {
        &self.shards[s]
    }

    /// Consumes the sharded store, handing out the per-shard arenas whole —
    /// the export seam for execution modes that give each shard away (a
    /// distributed owner takes its arena as private state, no aliasing back
    /// into the source). Under `BySetRange` the concatenation of the
    /// returned stores in order is the original global id order.
    pub fn into_stores(self) -> Vec<SetStore> {
        self.shards
    }

    /// The element block owned by shard `s` under `ByUniverseBlocks`.
    ///
    /// # Panics
    /// Panics under `BySetRange` (set-range shards own ids, not elements).
    pub fn block(&self, s: usize) -> Range<usize> {
        assert!(
            matches!(self.plan, ShardPlan::ByUniverseBlocks { .. }),
            "block() is only defined for ByUniverseBlocks shards"
        );
        self.blocks[s].clone()
    }

    /// Number of *logical* sets: the sum of shard lengths under
    /// `BySetRange`, the (shared) per-shard length under
    /// `ByUniverseBlocks`.
    pub fn len(&self) -> usize {
        match self.plan {
            ShardPlan::BySetRange { .. } => self.shards.iter().map(|s| s.len()).sum(),
            ShardPlan::ByUniverseBlocks { .. } => self.shards.first().map_or(0, |s| s.len()),
        }
    }

    /// Whether the store holds no logical sets.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Shard-local read: the set (or, under `ByUniverseBlocks`, the piece)
    /// at `(shard, local)`.
    ///
    /// # Panics
    /// Panics if either index is out of range.
    #[inline]
    pub fn get(&self, shard: usize, local: usize) -> SetRef<'_> {
        self.shards[shard].get(local)
    }

    /// Shard-local append, returning the local index within `shard`.
    ///
    /// Under `BySetRange` this appends a whole new logical set to the
    /// shard (its global id follows the shard-concatenation order); under
    /// `ByUniverseBlocks` it appends one *piece*, which must lie inside
    /// the shard's element block, and callers are responsible for pushing
    /// one piece per logical set to every shard (as
    /// [`from_sorted_lists`](Self::from_sorted_lists) does) so shard
    /// lengths stay aligned.
    ///
    /// # Panics
    /// Panics if the list is not strictly increasing, any element is out
    /// of the universe, or (under `ByUniverseBlocks`) any element falls
    /// outside the shard's block.
    pub fn push_sorted(&mut self, shard: usize, elems: &[u32]) -> usize {
        if let ShardPlan::ByUniverseBlocks { .. } = self.plan {
            let b = &self.blocks[shard];
            if let (Some(&first), Some(&last)) = (elems.first(), elems.last()) {
                assert!(
                    b.start <= first as usize && (last as usize) < b.end,
                    "piece [{first}, {last}] outside shard block {b:?}"
                );
            }
        }
        self.shards[shard].push_sorted(elems)
    }

    /// Locates the shard holding global set id `i` under `BySetRange`,
    /// returning `(shard, local)`.
    ///
    /// # Panics
    /// Panics under `ByUniverseBlocks` (every shard holds a piece of `i` at
    /// `local = i`) or if `i` is out of range.
    pub fn locate(&self, i: SetId) -> (usize, usize) {
        assert!(
            matches!(self.plan, ShardPlan::BySetRange { .. }),
            "locate() is only defined for BySetRange shards"
        );
        let mut offset = 0;
        for (s, shard) in self.shards.iter().enumerate() {
            if i < offset + shard.len() {
                return (s, i - offset);
            }
            offset += shard.len();
        }
        panic!("set id {i} out of range for {offset} sharded sets");
    }

    /// The sorted element list of logical set `i`, reassembled across
    /// shards: a single shard-local copy under `BySetRange`, the
    /// block-order concatenation of the pieces under `ByUniverseBlocks`
    /// (blocks are increasing and disjoint, so the concatenation is
    /// sorted).
    pub fn logical_elems(&self, i: SetId) -> Vec<u32> {
        match self.plan {
            ShardPlan::BySetRange { .. } => {
                let (s, local) = self.locate(i);
                self.shards[s].get(local).iter().map(|e| e as u32).collect()
            }
            ShardPlan::ByUniverseBlocks { .. } => {
                let mut out = Vec::new();
                for shard in &self.shards {
                    out.extend(shard.get(i).iter().map(|e| e as u32));
                }
                out
            }
        }
    }

    /// Total `(set, element)` incidences across all shard arenas.
    pub fn total_incidences(&self) -> usize {
        self.shards.iter().map(|s| s.total_incidences()).sum()
    }

    /// Sum of the paper-accounting bits the shard arenas actually store
    /// (tombstone charges included — see [`SetStore::stored_bits`]).
    pub fn stored_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.stored_bits()).sum()
    }

    /// Paper-accounting bits still occupied by tombstoned slots across all
    /// shard arenas — the garbage a windowed stream's bucket-expiry leaves
    /// behind until whole buckets drop.
    pub fn tombstone_bits(&self) -> u64 {
        self.shards.iter().map(|s| s.tombstone_bits()).sum()
    }
}

/// Runs `work` once per part on the shared default-sized
/// [`Runtime`](crate::runtime::Runtime) — inline when there is only one
/// part — returning results in part order. The one fork/join shape every
/// per-shard fan-out in the workspace uses (shard construction, the
/// `into_sharded` splits, parallel greedy seeding, `ParallelPass`'s
/// candidate filter). Callers holding their own runtime should use
/// [`Runtime::map_parts`](crate::runtime::Runtime::map_parts) directly;
/// this free function exists for entry points with no runtime in scope and
/// pays no per-call spawn either way (the pool is persistent).
pub fn map_parts<P: Sync, T: Send>(parts: &[P], work: impl Fn(&P) -> T + Sync) -> Vec<T> {
    crate::runtime::Runtime::global().map_parts(parts, work)
}

/// A zero-copy shard view over one flat [`SetStore`] arena: a contiguous
/// range of set ids whose descriptors — and therefore whose slice of the
/// element arena — a single worker walks without striding past other
/// workers' data. Produced by [`crate::SetSystem::shards`].
#[derive(Clone, Debug)]
pub struct StoreShard<'a> {
    store: &'a SetStore,
    ids: Range<usize>,
}

impl<'a> StoreShard<'a> {
    /// A view of `ids` within `store`.
    ///
    /// # Panics
    /// Panics if the range exceeds the store.
    pub fn new(store: &'a SetStore, ids: Range<usize>) -> Self {
        assert!(ids.end <= store.len(), "shard range {ids:?} out of store");
        StoreShard { store, ids }
    }

    /// The backing flat arena.
    pub fn store(&self) -> &'a SetStore {
        self.store
    }

    /// The global id range this shard owns.
    pub fn ids(&self) -> Range<usize> {
        self.ids.clone()
    }

    /// Number of sets in the shard.
    pub fn len(&self) -> usize {
        self.ids.len()
    }

    /// Whether the shard is empty.
    pub fn is_empty(&self) -> bool {
        self.ids.is_empty()
    }

    /// Shard-local read (`local` is relative to [`ids`](Self::ids)`.start`).
    #[inline]
    pub fn get(&self, local: usize) -> SetRef<'a> {
        assert!(local < self.ids.len(), "local id {local} out of shard");
        self.store.get(self.ids.start + local)
    }

    /// Gains of every set in the shard against `residual`, in shard-local
    /// order — one contiguous descriptor-span walk of the shared arena.
    pub fn gains<'g>(&self, sweep: &'g mut BatchedSweep, residual: &BitSet) -> &'g [usize] {
        sweep.gains_span(self.store, self.ids.clone(), residual)
    }
}

impl BatchedSweep {
    /// Gains of one shard's sets against a dense residual, in shard-local
    /// order, walking **one shard arena per call** — the per-shard
    /// counterpart of [`BatchedSweep::gains`]. Under `ByUniverseBlocks`
    /// the per-shard gains of a logical set sum (over shards) to its
    /// unsharded gain; under `BySetRange` the shard-order concatenation
    /// *is* the unsharded gains vector.
    ///
    /// # Panics
    /// Panics if `shard` is out of range or the residual's capacity
    /// differs from the store's universe.
    pub fn gains_sharded(
        &mut self,
        sharded: &ShardedStore,
        shard: usize,
        residual: &BitSet,
    ) -> &[usize] {
        self.gains(sharded.shard(shard), residual)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lists() -> Vec<Vec<u32>> {
        vec![
            vec![0, 1, 2, 63, 64],
            vec![],
            vec![5, 70, 99],
            vec![0, 99],
            vec![33, 34, 35, 36, 37, 38, 39, 40],
        ]
    }

    #[test]
    fn shard_count_clamps() {
        assert_eq!(ShardPlan::BySetRange { shards: 4 }.shard_count(10, 100), 4);
        assert_eq!(ShardPlan::BySetRange { shards: 0 }.shard_count(10, 100), 1);
        assert_eq!(ShardPlan::BySetRange { shards: 99 }.shard_count(3, 100), 3);
        assert_eq!(
            ShardPlan::ByUniverseBlocks { blocks: 8 }.shard_count(3, 100),
            8
        );
        assert_eq!(
            ShardPlan::ByUniverseBlocks { blocks: 500 }.shard_count(3, 100),
            100
        );
        assert_eq!(ShardPlan::BySetRange { shards: 2 }.shard_count(0, 0), 1);
    }

    #[test]
    fn split_ranges_cover_and_balance() {
        let rs = split_ranges(10, 3);
        assert_eq!(rs, vec![0..4, 4..7, 7..10]);
        assert_eq!(split_ranges(2, 5), vec![0..1, 1..2, 2..2, 2..2, 2..2]);
        assert_eq!(split_ranges(0, 2), vec![0..0, 0..0]);
    }

    #[test]
    fn by_set_range_partitions_ids() {
        let st = ShardedStore::from_sorted_lists(
            100,
            ReprPolicy::Auto,
            ShardPlan::BySetRange { shards: 2 },
            &lists(),
        );
        assert_eq!(st.num_shards(), 2);
        assert_eq!(st.len(), 5);
        assert_eq!(st.shard(0).len(), 3);
        assert_eq!(st.shard(1).len(), 2);
        assert_eq!(st.get(0, 2).to_vec(), vec![5, 70, 99]);
        assert_eq!(st.get(1, 0).to_vec(), vec![0, 99]);
        assert_eq!(st.locate(3), (1, 0));
        assert_eq!(st.logical_elems(4), vec![33, 34, 35, 36, 37, 38, 39, 40]);
        assert_eq!(st.total_incidences(), 5 + 3 + 2 + 8);
    }

    #[test]
    fn by_universe_blocks_projects_every_set() {
        let st = ShardedStore::from_sorted_lists(
            100,
            ReprPolicy::ForceSparse,
            ShardPlan::ByUniverseBlocks { blocks: 2 },
            &lists(),
        );
        assert_eq!(st.num_shards(), 2);
        assert_eq!(st.block(0), 0..50);
        assert_eq!(st.block(1), 50..100);
        assert_eq!(st.len(), 5, "every shard holds all logical sets");
        // Set 0 = {0,1,2,63,64}: piece {0,1,2} in block 0, {63,64} in 1.
        assert_eq!(st.get(0, 0).to_vec(), vec![0, 1, 2]);
        assert_eq!(st.get(1, 0).to_vec(), vec![63, 64]);
        assert_eq!(st.logical_elems(0), vec![0, 1, 2, 63, 64]);
        assert_eq!(st.logical_elems(1), Vec::<u32>::new());
        // Incidences are preserved: blocks partition the universe.
        assert_eq!(st.total_incidences(), 5 + 3 + 2 + 8);
    }

    #[test]
    fn push_sorted_is_shard_local() {
        let mut st = ShardedStore::from_sorted_lists(
            64,
            ReprPolicy::Auto,
            ShardPlan::BySetRange { shards: 2 },
            &[vec![1], vec![2]],
        );
        let local = st.push_sorted(0, &[7, 8]);
        assert_eq!(local, 1);
        assert_eq!(st.len(), 3);
        // Global order is the shard concatenation: shard 0 grew, so the
        // pushed set sits at global id 1 and shard 1's set moved to 2.
        assert_eq!(st.locate(1), (0, 1));
        assert_eq!(st.locate(2), (1, 0));
    }

    #[test]
    #[should_panic(expected = "outside shard block")]
    fn universe_block_push_rejects_out_of_block_pieces() {
        let mut st = ShardedStore::from_sorted_lists(
            64,
            ReprPolicy::Auto,
            ShardPlan::ByUniverseBlocks { blocks: 2 },
            &[],
        );
        st.push_sorted(0, &[40]); // block 0 is 0..32
    }

    #[test]
    fn from_shard_stores_concatenates() {
        let mut a = SetStore::new(16);
        a.push_sorted(&[0, 1]);
        let mut b = SetStore::new(16);
        b.push_sorted(&[2]);
        b.push_sorted(&[3]);
        let st = ShardedStore::from_shard_stores(16, ReprPolicy::Auto, vec![a, b]);
        assert_eq!(st.len(), 3);
        assert_eq!(st.locate(0), (0, 0));
        assert_eq!(st.locate(2), (1, 1));
        assert_eq!(st.logical_elems(2), vec![3]);
    }

    #[test]
    #[should_panic(expected = "shard universe mismatch")]
    fn from_shard_stores_checks_universe() {
        ShardedStore::from_shard_stores(16, ReprPolicy::Auto, vec![SetStore::new(8)]);
    }

    #[test]
    fn gains_sharded_walks_one_arena() {
        let n = 100;
        let residual = BitSet::from_iter(n, (0..n).filter(|e| e % 2 == 0));
        let flat = {
            let mut st = SetStore::new(n);
            for l in &lists() {
                st.push_sorted(l);
            }
            st
        };
        let mut sweep = BatchedSweep::new();
        let expect = sweep.gains(&flat, &residual).to_vec();

        // BySetRange: shard-order concatenation equals the flat gains.
        let by_sets = ShardedStore::from_sorted_lists(
            n,
            ReprPolicy::Auto,
            ShardPlan::BySetRange { shards: 2 },
            &lists(),
        );
        let mut cat = Vec::new();
        for s in 0..by_sets.num_shards() {
            cat.extend_from_slice(sweep.gains_sharded(&by_sets, s, &residual));
        }
        assert_eq!(cat, expect);

        // ByUniverseBlocks: per-set gains sum across shards to the flat
        // gains (blocks partition the universe).
        let by_blocks = ShardedStore::from_sorted_lists(
            n,
            ReprPolicy::Auto,
            ShardPlan::ByUniverseBlocks { blocks: 3 },
            &lists(),
        );
        let mut sums = vec![0usize; by_blocks.len()];
        for s in 0..by_blocks.num_shards() {
            for (i, &g) in sweep
                .gains_sharded(&by_blocks, s, &residual)
                .iter()
                .enumerate()
            {
                sums[i] += g;
            }
        }
        assert_eq!(sums, expect);
    }

    #[test]
    fn sharded_tombstone_bits_sum_over_shards() {
        let mut a = SetStore::new(1024);
        a.push_sorted(&[0, 1, 2, 3]); // sparse: 40 bits
        let mut b = SetStore::new(1024);
        b.push_sorted(&(0..1024).step_by(2).collect::<Vec<u32>>()); // dense
        b.push_sorted(&[9]);
        let mut st = ShardedStore::from_shard_stores(1024, ReprPolicy::Auto, vec![a, b]);
        let before = st.stored_bits();
        assert_eq!(st.tombstone_bits(), 0);
        // Tombstone one slot per shard through the shard arenas.
        st.shards[0].remove(0);
        st.shards[1].remove(0);
        assert_eq!(st.tombstone_bits(), 40 + 1024);
        assert_eq!(st.stored_bits(), before, "charges persist across shards");
    }

    #[test]
    fn store_shard_views_are_zero_copy_windows() {
        let mut flat = SetStore::new(50);
        for l in [&[0u32, 1][..], &[2, 3, 4], &[5]] {
            flat.push_sorted(l);
        }
        let shard = StoreShard::new(&flat, 1..3);
        assert_eq!(shard.len(), 2);
        assert_eq!(shard.get(0).to_vec(), vec![2, 3, 4]);
        assert_eq!(shard.get(1).to_vec(), vec![5]);
        let residual = BitSet::full(50);
        let mut sweep = BatchedSweep::new();
        assert_eq!(shard.gains(&mut sweep, &residual), &[3, 1]);
    }
}
