//! The gap-hamming-distance gadget `GHD_t` and its promise distribution
//! `D_GHD` (§4.1), the engine of the `D_MC` hardness construction.
//!
//! `GHD_t` is the promise problem on pairs `A, B ⊆ [t]`:
//! **Yes** when `Δ(A, B) ≥ t/2 + √t`, **No** when `Δ(A, B) ≤ t/2 − √t`,
//! and unconstrained (`⋆`) in the gap.
//!
//! The *balanced* promise distribution sampled here keeps `|A| = |B| = t/2`
//! exactly: `A` is a uniform `t/2`-subset and `B` is obtained by swapping
//! `d/2` uniformly chosen members of `A` against `d/2` uniformly chosen
//! non-members, for an even distance `d` drawn uniformly from the branch's
//! promise range. This gives `Δ(A, B) = d` *exactly*, so both branches
//! satisfy their promise deterministically — which is what lets the
//! Lemma 4.3 / Lemma 4.5 experiments separate `θ` without slack for
//! sampling noise — and `|A ∪ B| = t/2 + d/2` exactly, the identity behind
//! `D_MC`'s coverage geometry (Claim 4.4).

use rand::Rng;
use streamcover_core::{random_subset, BitSet};

/// Shape of the balanced GHD distribution.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct GhdParams {
    /// Ground set size `t` (even, ≥ 4).
    pub t: usize,
}

impl GhdParams {
    /// Balanced parameters over `[t]`.
    ///
    /// # Panics
    /// Panics unless `t` is even and at least 4 (so the promise gap
    /// `t/2 ± √t` is nondegenerate and `|A| = t/2` is integral).
    pub fn balanced(t: usize) -> Self {
        assert!(t >= 4, "GHD needs t ≥ 4, got {t}");
        assert!(t.is_multiple_of(2), "balanced GHD needs even t, got {t}");
        GhdParams { t }
    }

    /// The Yes promise threshold `t/2 + √t`.
    pub fn yes_threshold(&self) -> f64 {
        self.t as f64 / 2.0 + (self.t as f64).sqrt()
    }

    /// The No promise threshold `t/2 − √t`.
    pub fn no_threshold(&self) -> f64 {
        self.t as f64 / 2.0 - (self.t as f64).sqrt()
    }

    /// Smallest even distance satisfying the Yes promise.
    fn min_yes_even(&self) -> usize {
        let d = self.yes_threshold().ceil() as usize;
        d + (d % 2)
    }

    /// Largest even distance satisfying the No promise.
    fn max_no_even(&self) -> usize {
        let d = self.no_threshold().floor() as usize;
        d - (d % 2)
    }
}

/// Ground-truth classification of a `GHD_t` pair at distance `dist`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GhdAnswer {
    /// `Δ ≥ t/2 + √t`.
    Yes,
    /// `Δ ≤ t/2 − √t`.
    No,
    /// Inside the promise gap — any protocol output is acceptable.
    Star,
}

/// Classifies a distance against the `t/2 ± √t` promise thresholds.
pub fn classify(t: usize, dist: usize) -> GhdAnswer {
    let (half, root) = (t as f64 / 2.0, (t as f64).sqrt());
    let d = dist as f64;
    if d >= half + root {
        GhdAnswer::Yes
    } else if d <= half - root {
        GhdAnswer::No
    } else {
        GhdAnswer::Star
    }
}

/// One `GHD_t` input pair.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct GhdInstance {
    /// Alice's set `A ⊆ [t]`.
    pub a: BitSet,
    /// Bob's set `B ⊆ [t]`.
    pub b: BitSet,
}

impl GhdInstance {
    /// `Δ(A, B) = |A Δ B|`.
    pub fn hamming(&self) -> usize {
        self.a.hamming_distance(&self.b)
    }

    /// Ground-truth promise classification of this pair.
    pub fn answer(&self) -> GhdAnswer {
        classify(self.a.capacity(), self.hamming())
    }
}

/// Samples the Yes branch `D^Y`: `Δ(A, B)` uniform over even values in
/// `[t/2 + √t, t]`.
pub fn sample_yes<R: Rng + ?Sized>(rng: &mut R, p: GhdParams) -> GhdInstance {
    let lo = p.min_yes_even();
    let d = sample_even(rng, lo, p.t);
    pair_at_distance(rng, p, d)
}

/// Samples the No branch `D^N`: `Δ(A, B)` uniform over even values in
/// `[0, t/2 − √t]`.
pub fn sample_no<R: Rng + ?Sized>(rng: &mut R, p: GhdParams) -> GhdInstance {
    let d = sample_even(rng, 0, p.max_no_even());
    pair_at_distance(rng, p, d)
}

/// The `A`-marginal of `D^N` (by exchangeability also the `B`-marginal): a
/// uniform `t/2`-subset.
pub fn sample_a_marginal_no<R: Rng + ?Sized>(rng: &mut R, p: GhdParams) -> BitSet {
    random_subset(rng, p.t, p.t / 2)
}

/// Samples `B | A` under `D^N`: a fresh even promise distance, realized by
/// a uniform balanced swap against `A`.
pub fn sample_b_given_a_no<R: Rng + ?Sized>(rng: &mut R, p: GhdParams, a: &BitSet) -> BitSet {
    let d = sample_even(rng, 0, p.max_no_even());
    swap_at_distance(rng, a, d)
}

/// Samples `A | B` under `D^N` (the distribution is exchangeable in the two
/// sides, so this is the same conditional).
pub fn sample_a_given_b_no<R: Rng + ?Sized>(rng: &mut R, p: GhdParams, b: &BitSet) -> BitSet {
    sample_b_given_a_no(rng, p, b)
}

/// Uniform even value in `[lo, hi]` (both even).
fn sample_even<R: Rng + ?Sized>(rng: &mut R, lo: usize, hi: usize) -> usize {
    debug_assert!(lo.is_multiple_of(2) && hi.is_multiple_of(2) && lo <= hi);
    lo + 2 * rng.gen_range(0..=(hi - lo) / 2)
}

/// A uniform balanced pair at exact distance `d`.
fn pair_at_distance<R: Rng + ?Sized>(rng: &mut R, p: GhdParams, d: usize) -> GhdInstance {
    let a = random_subset(rng, p.t, p.t / 2);
    let b = swap_at_distance(rng, &a, d);
    GhdInstance { a, b }
}

/// Swaps `d/2` members of `a` against `d/2` non-members, uniformly — the
/// result has `a`'s size and Hamming distance exactly `d` from it.
fn swap_at_distance<R: Rng + ?Sized>(rng: &mut R, a: &BitSet, d: usize) -> BitSet {
    let t = a.capacity();
    debug_assert!(d.is_multiple_of(2) && d / 2 <= a.len() && d / 2 <= t - a.len());
    let members = a.to_vec();
    let outsiders = a.complement().to_vec();
    let drop = random_subset(rng, members.len(), d / 2);
    let add = random_subset(rng, outsiders.len(), d / 2);
    let mut b = a.clone();
    for i in drop.iter() {
        b.remove(members[i]);
    }
    for i in add.iter() {
        b.insert(outsiders[i]);
    }
    b
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn yes_branch_always_meets_the_promise() {
        let mut rng = StdRng::seed_from_u64(1);
        for t in [4, 16, 64, 100] {
            let p = GhdParams::balanced(t);
            for _ in 0..100 {
                let i = sample_yes(&mut rng, p);
                assert_eq!(i.answer(), GhdAnswer::Yes, "t={t}, Δ={}", i.hamming());
                assert_eq!(i.a.len(), t / 2);
                assert_eq!(i.b.len(), t / 2, "swaps must preserve balance");
            }
        }
    }

    #[test]
    fn no_branch_always_meets_the_promise() {
        let mut rng = StdRng::seed_from_u64(2);
        for t in [4, 16, 64, 100] {
            let p = GhdParams::balanced(t);
            for _ in 0..100 {
                let i = sample_no(&mut rng, p);
                assert_eq!(i.answer(), GhdAnswer::No, "t={t}, Δ={}", i.hamming());
                assert_eq!(i.a.len(), t / 2);
                assert_eq!(i.b.len(), t / 2);
            }
        }
    }

    #[test]
    fn classify_matches_thresholds_at_t64() {
        // t = 64: √t = 8, so Yes ⇔ Δ ≥ 40, No ⇔ Δ ≤ 24.
        assert_eq!(classify(64, 40), GhdAnswer::Yes);
        assert_eq!(classify(64, 64), GhdAnswer::Yes);
        assert_eq!(classify(64, 39), GhdAnswer::Star);
        assert_eq!(classify(64, 25), GhdAnswer::Star);
        assert_eq!(classify(64, 24), GhdAnswer::No);
        assert_eq!(classify(64, 0), GhdAnswer::No);
    }

    #[test]
    fn classify_agrees_with_sampled_promises() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = GhdParams::balanced(64);
        for _ in 0..200 {
            let y = sample_yes(&mut rng, p);
            assert_eq!(classify(p.t, y.hamming()), GhdAnswer::Yes);
            let n = sample_no(&mut rng, p);
            assert_eq!(classify(p.t, n.hamming()), GhdAnswer::No);
        }
    }

    #[test]
    fn union_size_identity_for_balanced_pairs() {
        // |A ∪ B| = t/2 + Δ/2 exactly — the Claim 4.4 geometry.
        let mut rng = StdRng::seed_from_u64(4);
        let p = GhdParams::balanced(64);
        for _ in 0..100 {
            let i = sample_yes(&mut rng, p);
            assert_eq!(i.a.union_len(&i.b), p.t / 2 + i.hamming() / 2);
            let i = sample_no(&mut rng, p);
            assert_eq!(i.a.union_len(&i.b), p.t / 2 + i.hamming() / 2);
        }
    }

    #[test]
    fn conditionals_preserve_balance_and_promise() {
        let mut rng = StdRng::seed_from_u64(5);
        let p = GhdParams::balanced(16);
        for _ in 0..100 {
            let a = sample_a_marginal_no(&mut rng, p);
            assert_eq!(a.len(), 8);
            let b = sample_b_given_a_no(&mut rng, p, &a);
            assert_eq!(b.len(), 8);
            assert_eq!(classify(p.t, a.hamming_distance(&b)), GhdAnswer::No);
            let a2 = sample_a_given_b_no(&mut rng, p, &b);
            assert_eq!(classify(p.t, a2.hamming_distance(&b)), GhdAnswer::No);
        }
    }

    #[test]
    fn distances_spread_over_the_promise_range() {
        // The Yes branch should not collapse onto a single distance.
        let mut rng = StdRng::seed_from_u64(6);
        let p = GhdParams::balanced(64);
        let seen: std::collections::HashSet<usize> = (0..200)
            .map(|_| sample_yes(&mut rng, p).hamming())
            .collect();
        assert!(seen.len() >= 5, "only distances {seen:?}");
        assert!(seen.iter().all(|d| d.is_multiple_of(2)));
    }

    #[test]
    #[should_panic(expected = "even t")]
    fn odd_t_rejected() {
        GhdParams::balanced(65);
    }
}
