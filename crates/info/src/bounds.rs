//! The paper's concentration bounds as executable calculators.
//!
//! * Proposition 2.1 — the multiplicative Chernoff bound
//!   `P(|X−μ| > ε·μ) ≤ 2·exp(−ε²·μ/2)`.
//! * Lemma 2.2 — random large sets leave residuals: for `k` independent
//!   uniform `(n−s)`-subsets and an independent `U ⊆ [n]`,
//!   `P(|U \ ⋃S_i| < (|U|/2)·(s/2n)^k) < 2·exp(−(|U|/8)·(s/2n)^k)` when
//!   `k = o(e^s)`. This is the engine behind Lemma 3.2 and Claim 3.3.
//! * Communication lower bounds — [`disj_lower_bound_bits`] (the linear
//!   randomized Disjointness bound) and [`dsc_lower_bound_bits`] (its
//!   transfer to `D_SC` through Lemma 3.4's embedding): the floors the
//!   distributed executor's measured bytes-on-the-wire are gated against.

use rand::Rng;
use streamcover_core::{random_subset, BitSet};

/// The randomized communication lower bound for set disjointness on `t`
/// elements: `R(Disj_t) ≥ t/4` bits (Kalyanasundaram–Schnitger '92,
/// Razborov '92 — the linear bound the paper invokes as Fact 3.1's
/// quantitative engine). Any two-party protocol that decides `Disj_t` with
/// error ≤ 1/3 must exchange at least this many bits.
pub fn disj_lower_bound_bits(t: usize) -> f64 {
    t as f64 / 4.0
}

/// The communication floor for `D_SC(n, m, t)` instances via Lemma 3.4:
/// a protocol whose answer distinguishes `opt ≤ 2` from `opt > 2α` on the
/// hard distribution decides the embedded `Disj_t` instance, so its
/// transcript must carry at least [`disj_lower_bound_bits`]`(t)` bits.
/// This is the gate the distributed executor's measured
/// `Transcript::total_bits()` is checked against (measured ≥ bound; the
/// ratio is logged by the `substrate_bench` `dist` arm).
pub fn dsc_lower_bound_bits(t: usize) -> f64 {
    disj_lower_bound_bits(t)
}

/// Proposition 2.1: the probability bound `2·exp(−ε²·μ/2)`.
pub fn chernoff_bound(eps: f64, mean: f64) -> f64 {
    assert!((0.0..=1.0).contains(&eps), "Chernoff needs 0 ≤ ε ≤ 1");
    assert!(mean >= 0.0);
    2.0 * (-eps * eps * mean / 2.0).exp()
}

/// Lemma 2.2's residual threshold `(|U|/2)·(s/2n)^k`.
pub fn lemma22_threshold(u_len: usize, s: usize, n: usize, k: usize) -> f64 {
    assert!(s <= n && n > 0);
    (u_len as f64 / 2.0) * (s as f64 / (2.0 * n as f64)).powi(k as i32)
}

/// Lemma 2.2's failure-probability bound `2·exp(−(|U|/8)·(s/2n)^k)`.
pub fn lemma22_failure_bound(u_len: usize, s: usize, n: usize, k: usize) -> f64 {
    assert!(s <= n && n > 0);
    2.0 * (-(u_len as f64 / 8.0) * (s as f64 / (2.0 * n as f64)).powi(k as i32)).exp()
}

/// One Lemma 2.2 trial: draws `k` independent uniform `(n−s)`-subsets and
/// reports the residual `|U \ (S_1 ∪ … ∪ S_k)|`.
pub fn lemma22_trial<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    s: usize,
    k: usize,
    u: &BitSet,
) -> usize {
    assert_eq!(u.capacity(), n);
    let mut residual = u.clone();
    for _ in 0..k {
        let set = random_subset(rng, n, n - s);
        residual.difference_with(&set);
    }
    residual.len()
}

/// Runs `trials` Lemma 2.2 experiments; returns the empirical failure rate
/// (fraction of trials with residual below the threshold) and the mean
/// residual. The lemma predicts the failure rate ≤
/// [`lemma22_failure_bound`].
pub fn lemma22_experiment<R: Rng + ?Sized>(
    rng: &mut R,
    n: usize,
    s: usize,
    k: usize,
    u: &BitSet,
    trials: usize,
) -> (f64, f64) {
    let threshold = lemma22_threshold(u.len(), s, n, k);
    let mut failures = 0usize;
    let mut total_residual = 0usize;
    for _ in 0..trials {
        let r = lemma22_trial(rng, n, s, k, u);
        if (r as f64) < threshold {
            failures += 1;
        }
        total_residual += r;
    }
    (
        failures as f64 / trials as f64,
        total_residual as f64 / trials as f64,
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    #[test]
    fn comm_lower_bounds_scale_linearly() {
        assert!((disj_lower_bound_bits(32) - 8.0).abs() < 1e-12);
        assert!((dsc_lower_bound_bits(32) - disj_lower_bound_bits(32)).abs() < 1e-12);
        assert!(dsc_lower_bound_bits(64) > dsc_lower_bound_bits(32));
        assert_eq!(disj_lower_bound_bits(0), 0.0);
    }

    #[test]
    fn chernoff_values() {
        assert!((chernoff_bound(1.0, 0.0) - 2.0).abs() < 1e-12);
        let b = chernoff_bound(0.5, 100.0);
        assert!((b - 2.0 * (-12.5f64).exp()).abs() < 1e-15);
        assert!(chernoff_bound(0.1, 1000.0) < chernoff_bound(0.1, 100.0));
    }

    #[test]
    fn threshold_and_failure_formulas() {
        // n = 100, s = 50, k = 2: (s/2n)^k = (1/4)² = 1/16.
        assert!((lemma22_threshold(80, 50, 100, 2) - 40.0 / 16.0).abs() < 1e-12);
        let f = lemma22_failure_bound(80, 50, 100, 2);
        assert!((f - 2.0 * (-(80.0f64 / 8.0) / 16.0).exp()).abs() < 1e-12);
    }

    #[test]
    fn mean_residual_matches_expectation() {
        // E residual = |U|·(s/n)^k (each element survives each set w.p. s/n).
        let mut rng = StdRng::seed_from_u64(1);
        let n = 1000;
        let s = 250;
        let k = 2;
        let u = BitSet::full(n);
        let (_, mean_resid) = lemma22_experiment(&mut rng, n, s, k, &u, 300);
        let expected = n as f64 * (s as f64 / n as f64).powi(k as i32); // 62.5
        assert!(
            (mean_resid - expected).abs() < expected * 0.15,
            "mean residual {mean_resid} vs expected {expected}"
        );
    }

    #[test]
    fn failure_rate_below_lemma_bound() {
        let mut rng = StdRng::seed_from_u64(2);
        let n = 2000;
        let s = 500;
        let u = BitSet::full(n);
        for k in [1, 2, 3] {
            let (rate, _) = lemma22_experiment(&mut rng, n, s, k, &u, 200);
            let bound = lemma22_failure_bound(n, s, n, k).min(1.0);
            assert!(
                rate <= bound + 0.05,
                "k={k}: empirical failure {rate} exceeds bound {bound}"
            );
        }
    }

    #[test]
    fn trial_on_partial_u() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 500;
        let u = BitSet::from_iter(n, 0..100);
        let r = lemma22_trial(&mut rng, n, 125, 1, &u);
        assert!(r <= 100);
        // Expected ≈ 100·(125/500) = 25.
        let (_, mean) = lemma22_experiment(&mut rng, n, 125, 1, &u, 400);
        assert!((mean - 25.0).abs() < 4.0, "mean {mean}");
    }
}
