//! E9 — arrival-order robustness: same algorithm, three stream orders.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use streamcover_dist::planted_cover;
use streamcover_stream::{Arrival, HarPeledAssadi, SetCoverStreamer};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e9_arrival_order");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(9);
    let w = planted_cover(&mut rng, 1024, 48, 6);
    let algo = HarPeledAssadi::scaled(3, 0.5);
    for (name, arrival) in [
        ("adversarial", Arrival::Adversarial),
        ("random", Arrival::Random { seed: 1 }),
        ("reshuffled", Arrival::ReshuffledEachPass { seed: 1 }),
    ] {
        g.bench_function(name, |b| {
            b.iter(|| algo.run(&w.system, arrival, &mut rng).peak_bits)
        });
    }
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
