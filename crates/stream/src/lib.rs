//! # streamcover-stream
//!
//! The streaming model of computation and the algorithms of Assadi
//! (PODS 2017) within it.
//!
//! Substrate:
//! * [`stream::SetStream`] — multi-pass set streams with enforced pass
//!   counting; adversarial and random-arrival orders ([`stream::Arrival`]).
//! * [`meter::SpaceMeter`] — bit-exact working-memory accounting (the
//!   paper's cost model), with RAII [`meter::ChargeGuard`]s so early
//!   returns can never leak live bits.
//! * [`parallel::ParallelPass`] — `std::thread::scope` fan-out of one
//!   pass: the candidate filter runs one worker per zero-copy arena shard
//!   and the refine merge block-partitions the residual by universe word
//!   ranges; workers own private meters joined via `absorb_join`
//!   (side-by-side within the pass, max across passes), and the
//!   deterministic merge guarantees picks identical to the sequential
//!   pass for every worker count.
//! * [`guessing::GuessDriver`] — the o͂pt-guess grid (clipped to
//!   `min(n, m)`), executable on scoped threads
//!   ([`guessing::GuessDriver::with_workers`]) with per-guess split rngs;
//!   sequential and thread-parallel drivers report identically.
//! * [`report`] — uniform run reports and the [`report::SetCoverStreamer`] /
//!   [`report::MaxCoverStreamer`] traits the bench harness sweeps.
//!
//! Set cover algorithms ([`algo`]):
//! * [`algo::HarPeledAssadi`] — **Algorithm 1**: `(α+ε)`-approximation,
//!   `2α+1` passes, `Õ(m·n^{1/α}/ε² + n/ε)` bits (Theorem 2), with ablation
//!   knobs for the one-shot-pruning and fine-sampling improvements over
//!   Har-Peled et al. (PODS 2016).
//! * [`algo::ThresholdGreedy`] — `O(log n)` passes / `O(log n)`-approx /
//!   `O(n)` bits classical baseline.
//! * [`algo::StoreAll`] — one pass, optimal, `Θ(mn)` bits.
//! * [`algo::OnlinePrune`] — single-pass accept-then-prune heuristic
//!   (Saha–Getoor style).
//!
//! Maximum coverage algorithms ([`maxcov`]):
//! * [`maxcov::ElementSampling`] — `(1−ε)`-approximate `k`-cover in
//!   `Õ(mk/ε²)` bits (the subject of Result 2's tight lower bound).
//! * [`maxcov::SieveStream`] — single-pass `(1/2−ε)` sieve baseline.
//! * [`maxcov::SahaGetoorSwap`] — the original swap heuristic
//!   (`1/4`-approximation).
//!
//! ## Quickstart
//!
//! ```
//! use rand::{rngs::StdRng, SeedableRng};
//! use streamcover_dist::planted_cover;
//! use streamcover_stream::{Arrival, SetCoverStreamer, ThresholdGreedy};
//!
//! let mut rng = StdRng::seed_from_u64(7);
//! let w = planted_cover(&mut rng, 256, 24, 4);
//! // `with_workers(4)` would fan each pass out over 4 threads — with
//! // picks and peaks guaranteed identical to this single-worker run.
//! let run = ThresholdGreedy::default().run(&w.system, Arrival::Adversarial, &mut rng);
//! assert!(run.feasible);
//! assert!(w.system.is_cover(&run.solution));
//! assert!(run.passes <= 9); // ⌈log₂ 256⌉ + 1
//! ```

pub mod algo;
pub mod guessing;
pub mod maxcov;
pub mod meter;
pub mod parallel;
pub mod report;
pub mod stream;

pub use algo::{
    HarPeledAssadi, InnerSolver, OnlinePrune, PassLimited, Pruning, SamplingRate, StoreAll,
    ThresholdGreedy,
};
pub use guessing::GuessDriver;
pub use maxcov::{ElementSampling, McOracle, SahaGetoorSwap, SieveStream};
pub use meter::{Accounting, ChargeGuard, SpaceMeter};
pub use parallel::ParallelPass;
pub use report::{CoverRun, MaxCoverRun, MaxCoverStreamer, SetCoverStreamer};
pub use stream::{Arrival, SetStream};
