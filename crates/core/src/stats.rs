//! Descriptive statistics of set systems and simple numeric summaries used
//! by the experiment harness (means, quantiles, regression fits for the
//! `space ∝ n^{1/α}` exponent checks).

use crate::system::SetSystem;

/// Summary statistics of a set system's shape.
#[derive(Clone, Debug, PartialEq)]
pub struct SystemStats {
    /// Universe size `n`.
    pub universe: usize,
    /// Number of sets `m`.
    pub num_sets: usize,
    /// Smallest set size.
    pub min_set_size: usize,
    /// Largest set size.
    pub max_set_size: usize,
    /// Mean set size.
    pub mean_set_size: f64,
    /// Total incidences `Σ|S_i|` (input size).
    pub total_incidences: usize,
    /// Number of elements covered by at least one set.
    pub coverable_elements: usize,
}

/// Computes [`SystemStats`] for a system.
pub fn system_stats(sys: &SetSystem) -> SystemStats {
    let sizes: Vec<usize> = sys.iter().map(|(_, s)| s.len()).collect();
    let total: usize = sizes.iter().sum();
    let coverable = sys.universe() - sys.uncoverable_elements().len();
    SystemStats {
        universe: sys.universe(),
        num_sets: sys.len(),
        min_set_size: sizes.iter().copied().min().unwrap_or(0),
        max_set_size: sizes.iter().copied().max().unwrap_or(0),
        mean_set_size: if sizes.is_empty() {
            0.0
        } else {
            total as f64 / sizes.len() as f64
        },
        total_incidences: total,
        coverable_elements: coverable,
    }
}

/// Arithmetic mean. Returns 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

/// Population standard deviation. Returns 0 for fewer than two samples.
pub fn std_dev(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt()
}

/// `q`-quantile (0 ≤ q ≤ 1) by nearest-rank on a sorted copy.
pub fn quantile(xs: &[f64], q: f64) -> f64 {
    assert!((0.0..=1.0).contains(&q), "quantile out of range: {q}");
    if xs.is_empty() {
        return f64::NAN;
    }
    let mut v = xs.to_vec();
    v.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let idx = ((v.len() - 1) as f64 * q).round() as usize;
    v[idx]
}

/// Ordinary least squares fit `y = a + b·x`; returns `(a, b)`.
///
/// Used by the tradeoff experiments to fit `log(space) = a + b·log(n)` per
/// `α` and compare the measured exponent `b` against the predicted `1/α`.
pub fn linear_fit(xs: &[f64], ys: &[f64]) -> (f64, f64) {
    assert_eq!(xs.len(), ys.len(), "fit input length mismatch");
    assert!(xs.len() >= 2, "need at least two points to fit");
    let mx = mean(xs);
    let my = mean(ys);
    let sxx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    assert!(sxx > 0.0, "degenerate fit: all x identical");
    let sxy: f64 = xs.iter().zip(ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let b = sxy / sxx;
    (my - b * mx, b)
}

/// Fits the exponent `β` of a power law `y ≈ c·x^β` via log-log OLS.
pub fn power_law_exponent(xs: &[f64], ys: &[f64]) -> f64 {
    let lx: Vec<f64> = xs.iter().map(|x| x.ln()).collect();
    let ly: Vec<f64> = ys.iter().map(|y| y.ln()).collect();
    linear_fit(&lx, &ly).1
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_of_demo_system() {
        let sys = SetSystem::from_elements(6, &[vec![0, 1, 2], vec![2, 3], vec![]]);
        let st = system_stats(&sys);
        assert_eq!(st.universe, 6);
        assert_eq!(st.num_sets, 3);
        assert_eq!(st.min_set_size, 0);
        assert_eq!(st.max_set_size, 3);
        assert!((st.mean_set_size - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(st.total_incidences, 5);
        assert_eq!(st.coverable_elements, 4);
    }

    #[test]
    fn stats_of_empty_system() {
        let st = system_stats(&SetSystem::new(5));
        assert_eq!(st.num_sets, 0);
        assert_eq!(st.mean_set_size, 0.0);
        assert_eq!(st.coverable_elements, 0);
    }

    #[test]
    fn mean_std_quantile() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        assert!((mean(&xs) - 2.5).abs() < 1e-12);
        assert!((std_dev(&xs) - (1.25f64).sqrt()).abs() < 1e-12);
        assert_eq!(quantile(&xs, 0.0), 1.0);
        assert_eq!(quantile(&xs, 1.0), 4.0);
        assert_eq!(quantile(&xs, 0.5), 3.0); // nearest rank of 1.5 → idx 2
        assert!(quantile(&[], 0.5).is_nan());
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(std_dev(&[1.0]), 0.0);
    }

    #[test]
    fn linear_fit_exact_line() {
        let xs = [0.0, 1.0, 2.0, 3.0];
        let ys = [1.0, 3.0, 5.0, 7.0];
        let (a, b) = linear_fit(&xs, &ys);
        assert!((a - 1.0).abs() < 1e-12);
        assert!((b - 2.0).abs() < 1e-12);
    }

    #[test]
    fn power_law_recovers_exponent() {
        let xs: Vec<f64> = (1..=8).map(|i| (1 << i) as f64).collect();
        let ys: Vec<f64> = xs.iter().map(|x| 3.0 * x.powf(0.5)).collect();
        let beta = power_law_exponent(&xs, &ys);
        assert!((beta - 0.5).abs() < 1e-9, "got {beta}");
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn fit_length_mismatch_panics() {
        linear_fit(&[1.0], &[1.0, 2.0]);
    }
}
