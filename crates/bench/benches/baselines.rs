//! E8 — the baseline streaming set cover algorithms.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use streamcover_dist::planted_cover;
use streamcover_stream::{Arrival, OnlinePrune, SetCoverStreamer, StoreAll, ThresholdGreedy};

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e8_baselines");
    g.sample_size(10)
        .measurement_time(std::time::Duration::from_secs(2));
    let mut rng = StdRng::seed_from_u64(8);
    let w = planted_cover(&mut rng, 1024, 64, 6);
    g.bench_function("threshold_greedy_n1024_m64", |b| {
        b.iter(|| {
            ThresholdGreedy
                .run(&w.system, Arrival::Adversarial, &mut rng)
                .size()
        })
    });
    g.bench_function("online_prune_n1024_m64", |b| {
        b.iter(|| {
            OnlinePrune
                .run(&w.system, Arrival::Adversarial, &mut rng)
                .size()
        })
    });
    g.bench_function("store_all_n1024_m64", |b| {
        b.iter(|| {
            StoreAll::default()
                .run(&w.system, Arrival::Adversarial, &mut rng)
                .size()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
