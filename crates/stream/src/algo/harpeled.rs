//! Algorithm 1 of the paper (§3.4): the `(α+ε)`-approximation streaming set
//! cover algorithm in `2α+1` passes and `Õ(m·n^{1/α}/ε² + n/ε)` space —
//! Assadi's sharpening of Har-Peled et al. (PODS 2016).
//!
//! Structure for a known guess `o͂pt` of the optimum:
//!
//! 1. **One-shot pruning pass** — pick every set covering `≥ n/(ε·o͂pt)`
//!    still-uncovered elements; at most `ε·o͂pt` picks, leaving all residual
//!    sets small (this is what caps the stored projections later).
//! 2. **α element-sampling rounds** — sample `U_smpl ⊆ U` at rate
//!    `p = 16·o͂pt·ln m / n^{1−1/α}`, store every `S'_i = S_i ∩ U_smpl` in one
//!    pass, solve set cover of `U_smpl` *offline* on the stored projections
//!    (computation is unrestricted in this model), then spend one more pass
//!    removing the chosen sets' elements from `U`. Lemma 3.12 with
//!    `ρ = n^{-1/α}` guarantees each round shrinks `U` by an `n^{1/α}`
//!    factor, so α rounds finish.
//!
//! The two knobs the paper's §3.4 comparison highlights are exposed for the
//! ablation (E11): [`Pruning`] (one-shot vs per-round vs none) and
//! [`SamplingRate`] (the paper's `1/ρ` rate vs the `1/ρ²` rate of the
//! original Har-Peled et al. analysis, which costs a full extra `n^{1/α}`
//! factor of space).
//!
//! Note on the paper's step 3(d): it reads `U_smpl ← U_smpl \ …`, but the
//! surrounding analysis (Lemma 3.11 tracks `|U|` shrinking per iteration and
//! step 3(a) re-samples from `U`) requires the update to apply to `U`; we
//! implement `U ← U \ ⋃_{i∈OPT'} S_i`.

use crate::guessing::GuessDriver;
use crate::meter::{SpaceMeter, WORD};
use crate::parallel::ParallelPass;
use crate::report::{CoverRun, SetCoverStreamer};
use crate::runtime::{ExecPolicy, Runtime};
use crate::stream::{Arrival, SetStream};
use rand::rngs::StdRng;
use rand::Rng;
use streamcover_core::{
    budgeted_cover_of, ceil_log2, greedy_cover_until, BitSet, SetId, SetSystem,
};

/// Which pruning discipline to run before/within the sampling rounds.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pruning {
    /// The paper's single pruning pass before the rounds (Algorithm 1).
    OneShot,
    /// A pruning pass at the start of every round — the iterative pruning
    /// of Har-Peled et al. that Algorithm 1 replaces (costs `α−1` extra
    /// passes; ablation arm).
    PerRound,
    /// No pruning (ablation arm: projections are no longer size-capped and
    /// the stored bits blow up).
    None,
}

/// Element-sampling rate per round.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SamplingRate {
    /// The paper's Lemma 3.12 rate `p = 16·k·ln m/(ρ·n)` with `ρ = n^{-1/α}`.
    Fine,
    /// The coarser `p = 16·k·ln m/(ρ²·n)` rate matching the original
    /// Har-Peled et al. analysis (Lemma 2.5 of \[32\]) — an extra `n^{1/α}`
    /// space factor.
    Coarse,
}

/// How the offline oracle on the sampled instance is realized.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum InnerSolver {
    /// Exact branch-and-bound with a node budget, falling back to greedy's
    /// incumbent when the budget trips (keeps the `(α+ε)` guarantee
    /// whenever the search completes — it virtually always does at our
    /// scales because the sampled instances have tiny covers).
    Exact {
        /// Search-node budget per round.
        node_budget: u64,
    },
    /// Plain greedy on the sample — faster, weakens the per-round pick
    /// bound from `o͂pt` to `o͂pt·H(|U_smpl|)`.
    Greedy,
}

/// Algorithm 1 with its ablation knobs.
///
/// The struct carries *algorithmic* parameters only. Execution —
/// per-pass fan-out, guess-grid fan-out, storage representation, space
/// accounting, run seed — is configured on the
/// [`ExecPolicy`] handed to
/// [`run_in`](crate::report::SetCoverStreamer::run_in); the legacy
/// per-algorithm `workers`/`guess_workers`/`accounting` fields are gone.
#[derive(Clone, Copy, Debug)]
pub struct HarPeledAssadi {
    /// Target approximation `α ≥ 1`.
    pub alpha: usize,
    /// Accuracy/space knob `ε ∈ (0, 1]`.
    pub eps: f64,
    /// Pruning discipline.
    pub pruning: Pruning,
    /// Sampling rate.
    pub rate: SamplingRate,
    /// Offline oracle realization.
    pub solver: InnerSolver,
    /// The constant `c` in the sampling rate `p = c·k·ln m/(ρ·n)`. The
    /// paper's analysis uses 16; at laptop scale `16·ln m` can exceed
    /// `n^{1−1/α}` and cap `p` at 1 (degenerating the algorithm into
    /// store-everything), so experiments may lower it — rounds then fail
    /// with slightly higher probability, which the o͂pt-guess grid absorbs.
    /// Recorded as a substitution in DESIGN.md §4.
    pub rate_constant: f64,
}

impl HarPeledAssadi {
    /// The paper's configuration: one-shot pruning, fine sampling, exact
    /// oracle, `c = 16`.
    pub fn paper(alpha: usize, eps: f64) -> Self {
        assert!(alpha >= 1, "α ≥ 1 required");
        assert!(eps > 0.0 && eps <= 1.0, "ε ∈ (0,1] required");
        HarPeledAssadi {
            alpha,
            eps,
            pruning: Pruning::OneShot,
            rate: SamplingRate::Fine,
            solver: InnerSolver::Exact {
                node_budget: 50_000,
            },
            rate_constant: 16.0,
        }
    }

    /// Laptop-scale configuration: the paper's structure with `c = 2`, so
    /// the `n^{1/α}` scaling is visible at `n ≤ 2^14` (see DESIGN.md §4).
    pub fn scaled(alpha: usize, eps: f64) -> Self {
        HarPeledAssadi {
            rate_constant: 2.0,
            ..Self::paper(alpha, eps)
        }
    }

    /// The original Har-Peled et al. shape: per-round pruning + coarse rate.
    pub fn harpeled_original(alpha: usize, eps: f64) -> Self {
        HarPeledAssadi {
            pruning: Pruning::PerRound,
            rate: SamplingRate::Coarse,
            ..Self::paper(alpha, eps)
        }
    }

    /// The sampling probability for guess `k` on a universe of size `n`.
    pub fn sample_rate(&self, n: usize, m: usize, k: usize) -> f64 {
        let rho = (n as f64).powf(-1.0 / self.alpha as f64);
        let base = self.rate_constant * k as f64 * (m.max(2) as f64).ln() / (rho * n as f64);
        let p = match self.rate {
            SamplingRate::Fine => base,
            SamplingRate::Coarse => base / rho,
        };
        p.min(1.0)
    }

    /// Runs Algorithm 1 for a fixed guess `k = o͂pt` on `rt` under
    /// `policy`. Returns `None` when the guess fails (sampled instance not
    /// coverable within `k` picks, or `U` nonempty after the rounds); the
    /// guessing driver then moves on.
    ///
    /// Space charged: `U` as a dense `n`-bit map, the solution ids, the
    /// sampled universe and every stored projection `S'_i` under the
    /// policy's [`Accounting`](crate::meter::Accounting). All retained
    /// state is held through RAII `ChargeGuard`s, so the early
    /// `return None` below (and any future one) releases exactly what is
    /// live — nothing leaks, nothing is force-reset.
    pub fn run_guess(
        &self,
        rt: &Runtime,
        policy: &ExecPolicy,
        stream: &mut SetStream<'_>,
        meter: &SpaceMeter,
        rng: &mut StdRng,
        k: usize,
    ) -> Option<Vec<SetId>> {
        let n = stream.universe();
        let m = stream.num_sets();
        let logm = u64::from(ceil_log2(m.max(2)));
        if n == 0 {
            return Some(Vec::new());
        }
        let engine = ParallelPass::from_policy(rt, policy);

        // U as a dense bitmap, live for the whole run; the solution ids
        // accrete into their own guard (`logm` bits each).
        let mut u = BitSet::full(n);
        let _u_guard = meter.guard(u.stored_bits_dense());
        let mut sol_guard = meter.guard(0);
        let mut sol: Vec<SetId> = Vec::new();

        // Pruning threshold n/(ε·k); each accepted set covers that many new
        // elements, so at most ε·k sets are accepted per pruning pass. The
        // pass fans out through the engine; accepted ids come back live on
        // the meter and are adopted into the solution guard.
        let threshold = ((n as f64) / (self.eps * k as f64)).ceil().max(1.0) as usize;
        let prune_pass = |u: &mut BitSet,
                          sol: &mut Vec<SetId>,
                          sol_guard: &mut crate::meter::ChargeGuard<'_>,
                          stream: &mut SetStream<'_>| {
            let _threshold_word = meter.guard(WORD);
            let picks = engine.threshold_pass(stream, u, threshold, meter, |i, _| sol.push(i));
            sol_guard.adopt(picks as u64 * logm);
        };

        if self.pruning == Pruning::OneShot {
            prune_pass(&mut u, &mut sol, &mut sol_guard, stream);
        }

        let p = self.sample_rate(n, m, k);
        for _round in 0..self.alpha {
            if u.is_empty() {
                break;
            }
            if self.pruning == Pruning::PerRound {
                prune_pass(&mut u, &mut sol, &mut sol_guard, stream);
                if u.is_empty() {
                    break;
                }
            }

            // Sample U_smpl ⊆ U (no pass needed: U is in memory).
            let mut u_smpl = BitSet::new(n);
            for e in u.iter() {
                if rng.gen_bool(p) {
                    u_smpl.insert(e);
                }
            }
            let _smpl_guard = meter.guard(u_smpl.stored_bits_sparse());

            // Storing pass: S'_i = S_i ∩ U_smpl for all i, fanned out over
            // the workers (each stores its chunk of the arrival order; the
            // merge is in arrival order, so the projected system is indexed
            // by arrival position and `arrival_ids` maps positions back to
            // instance ids — the `logm` per stored set is exactly that id).
            let mut stored_guard = meter.guard(0);
            let (arrival_ids, projected, stored_bits) =
                engine.store_pass(stream, meter, Some((&u_smpl, policy.accounting)));
            stored_guard.adopt(stored_bits);

            // Offline oracle on the sample, capped at k picks; map its
            // position-indexed answer back to instance ids.
            let picks = self.solve_sample(&projected, &u_smpl, k);
            drop(stored_guard);
            drop(_smpl_guard);
            let picks = picks?; // guess too small — guards release U + sol
            let picks: Vec<SetId> = picks.into_iter().map(|j| arrival_ids[j]).collect();

            // Update pass: U ← U \ ⋃ S_i over the chosen ids.
            for (i, s) in stream.pass() {
                if picks.contains(&i) {
                    u.difference_with_ref(s);
                }
            }
            for i in picks {
                sol.push(i);
                sol_guard.add(logm);
            }
        }

        let feasible = u.is_empty();
        feasible.then_some(sol)
    }

    /// Solves set cover of `target` on the stored projections, returning at
    /// most `k` ids or `None` when `k` do not suffice.
    fn solve_sample(&self, projected: &SetSystem, target: &BitSet, k: usize) -> Option<Vec<SetId>> {
        match self.solver {
            InnerSolver::Exact { node_budget } => {
                let (ids, _complete) = budgeted_cover_of(projected, target, node_budget);
                let ids = ids.ok()?;
                (ids.len() <= k && target.is_subset_of(&projected.coverage(&ids))).then_some(ids)
            }
            InnerSolver::Greedy => {
                let r = greedy_cover_until(projected, k, target);
                (r.covered == *target).then_some(r.ids)
            }
        }
    }
}

impl SetCoverStreamer for HarPeledAssadi {
    fn name(&self) -> &'static str {
        match (self.pruning, self.rate) {
            (Pruning::OneShot, SamplingRate::Fine) => "assadi-alg1",
            (Pruning::PerRound, SamplingRate::Coarse) => "harpeled-original",
            (Pruning::None, _) => "alg1-noprune",
            _ => "alg1-variant",
        }
    }

    fn run_in(
        &self,
        rt: &Runtime,
        policy: &ExecPolicy,
        sys: &SetSystem,
        arrival: Arrival,
        rng: &mut StdRng,
    ) -> CoverRun {
        let mut slot = None;
        let rng = policy.select_rng(rng, &mut slot);
        GuessDriver::new(self.eps).run(
            self.name(),
            rt,
            policy,
            sys,
            arrival,
            rng,
            |stream, meter, rng, k| self.run_guess(rt, policy, stream, meter, rng, k),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::meter::Accounting;
    use rand::SeedableRng;
    use streamcover_dist::{planted_cover, ScParams};

    fn run_paper(alpha: usize, eps: f64, seed: u64) -> (CoverRun, usize) {
        let mut rng = StdRng::seed_from_u64(seed);
        let w = planted_cover(&mut rng, 512, 48, 6);
        let algo = HarPeledAssadi::paper(alpha, eps);
        let run = algo.run(&w.system, Arrival::Adversarial, &mut rng);
        (run, 6)
    }

    #[test]
    fn paper_config_covers_and_respects_ratio() {
        let (run, planted_opt) = run_paper(3, 0.5, 1);
        assert!(run.feasible, "must return a feasible cover");
        // (α+ε)·opt bound against the *planted* opt (true opt ≤ planted).
        let bound = (3.0 + 0.5) * planted_opt as f64 * 1.5; // guess-grid slack
        assert!(
            (run.size() as f64) <= bound,
            "size {} exceeds (α+ε)·opt·slack = {bound}",
            run.size()
        );
    }

    #[test]
    fn pass_budget_is_2alpha_plus_1() {
        for alpha in [1, 2, 3, 4] {
            let mut rng = StdRng::seed_from_u64(7);
            let w = planted_cover(&mut rng, 256, 24, 4);
            let algo = HarPeledAssadi::paper(alpha, 0.5);
            let run = algo.run(&w.system, Arrival::Adversarial, &mut rng);
            assert!(
                run.passes <= 2 * alpha + 1,
                "α={alpha}: {} passes > 2α+1",
                run.passes
            );
            assert!(run.feasible);
        }
    }

    #[test]
    fn per_round_pruning_uses_more_passes() {
        let mut rng = StdRng::seed_from_u64(9);
        let w = planted_cover(&mut rng, 256, 24, 4);
        let paper = HarPeledAssadi::paper(3, 0.5);
        let orig = HarPeledAssadi::harpeled_original(3, 0.5);
        let r1 = paper.run(&w.system, Arrival::Adversarial, &mut rng);
        let r2 = orig.run(&w.system, Arrival::Adversarial, &mut rng);
        assert!(r1.feasible && r2.feasible);
        assert!(
            r2.passes >= r1.passes,
            "iterative pruning cannot use fewer passes ({} vs {})",
            r2.passes,
            r1.passes
        );
    }

    #[test]
    fn coarse_rate_charges_more_space() {
        // The 1/ρ² rate must store ≈ n^{1/α} times more bits (capped by p≤1).
        let mut rng = StdRng::seed_from_u64(11);
        let w = planted_cover(&mut rng, 2048, 64, 4);
        let fine = HarPeledAssadi::paper(4, 0.5);
        let coarse = HarPeledAssadi {
            rate: SamplingRate::Coarse,
            ..fine
        };
        let rf = fine.run(&w.system, Arrival::Adversarial, &mut rng);
        let rc = coarse.run(&w.system, Arrival::Adversarial, &mut rng);
        assert!(rf.feasible && rc.feasible);
        assert!(
            rc.peak_bits > rf.peak_bits,
            "coarse {} bits ≤ fine {} bits",
            rc.peak_bits,
            rf.peak_bits
        );
    }

    #[test]
    fn sample_rate_formula() {
        let algo = HarPeledAssadi::paper(2, 0.5);
        // n = 10_000, α = 2 ⇒ ρ = 0.01; p = 16·k·ln m/(ρ·n) = 16·k·ln m/100.
        let p = algo.sample_rate(10_000, 64, 1);
        assert!((p - 16.0 * 64f64.ln() / 100.0).abs() < 1e-12);
        // Rates cap at 1.
        assert_eq!(algo.sample_rate(100, 64, 50), 1.0);
        // Coarse = fine / ρ (before capping).
        let coarse = HarPeledAssadi {
            rate: SamplingRate::Coarse,
            ..algo
        };
        let pc = coarse.sample_rate(10_000, 64, 1);
        assert!((pc - p * 100.0).min(1.0) <= 1.0);
    }

    #[test]
    fn random_arrival_also_works() {
        let mut rng = StdRng::seed_from_u64(13);
        let w = planted_cover(&mut rng, 512, 48, 6);
        let algo = HarPeledAssadi::paper(3, 0.5);
        let run = algo.run(&w.system, Arrival::Random { seed: 99 }, &mut rng);
        assert!(run.feasible);
        assert!(run.passes <= 7);
    }

    #[test]
    fn greedy_solver_still_feasible() {
        let mut rng = StdRng::seed_from_u64(15);
        let w = planted_cover(&mut rng, 512, 48, 6);
        let algo = HarPeledAssadi {
            solver: InnerSolver::Greedy,
            ..HarPeledAssadi::paper(3, 0.5)
        };
        let run = algo.run(&w.system, Arrival::Adversarial, &mut rng);
        assert!(run.feasible);
    }

    #[test]
    fn dsc_space_decreases_under_actual_repr_accounting() {
        // Regression pin for the hybrid-store accounting: on a `D_SC`
        // instance the sets are dense (≈ 2n/3 elements), so whenever the
        // sampling rate caps near 1 the stored projections cross the
        // density cutover and live as n-bit maps. Charging the actual
        // representation must therefore come in strictly below the old
        // always-a-member-list convention (|S'|·log n ≈ 9n per projection),
        // and the measured peak must stay inside the Theorem 2 envelope
        // Õ(m·n^{1/α}/ε² + n/ε). Since the compressed backends landed,
        // ActualRepr charges *measured* encoded size — the store's argmin
        // now also considers chunked/Elias–Fano encodings, which can only
        // lower the actual peak, so this envelope rerun covers the real
        // encodings end to end.
        let p = ScParams::explicit(2048, 8, 16);
        let mut rng = StdRng::seed_from_u64(7);
        let inst = streamcover_dist::sample_dsc_with_theta(&mut rng, p, true);
        let sys = inst.combined();
        let (alpha, eps) = (2usize, 0.5f64);

        let run_with = |accounting: Accounting| {
            let mut r = StdRng::seed_from_u64(42);
            let algo = HarPeledAssadi::scaled(alpha, eps);
            algo.run_in(
                Runtime::sequential(),
                &ExecPolicy::sequential().accounting(accounting),
                &sys,
                Arrival::Adversarial,
                &mut r,
            )
        };
        let actual = run_with(Accounting::ActualRepr);
        let always_sparse = run_with(Accounting::AlwaysSparse);
        assert!(actual.feasible && always_sparse.feasible);
        assert_eq!(
            actual.solution, always_sparse.solution,
            "accounting must not change the algorithm"
        );
        assert!(
            actual.peak_bits < always_sparse.peak_bits,
            "actual-repr accounting must be cheaper on dense D_SC sets: \
             {} vs {}",
            actual.peak_bits,
            always_sparse.peak_bits
        );

        // Theorem 2 envelope with the Õ slack spelled out: ln n·ln m for
        // the hidden polylogs plus a constant absorbing the o͂pt-guess grid
        // (≈ log_{1.5} n parallel copies; measured ratio is ≈ 3.4, so 8×
        // leaves headroom without letting a Θ(m·n·polylog) regression pass).
        let (nf, mm) = (p.n as f64, (2 * p.m) as f64);
        let envelope = 8.0
            * (mm * nf.powf(1.0 / alpha as f64) * nf.ln() * mm.ln() / (eps * eps)
                + nf * nf.ln() / eps);
        assert!(
            (actual.peak_bits as f64) <= envelope,
            "peak {} bits exceeds Theorem 2 envelope {envelope:.0}",
            actual.peak_bits
        );
    }

    #[test]
    fn alpha_one_single_round_stores_everything_relevant() {
        // α = 1 ⇒ ρ = 1/n ⇒ p = 1: degenerate to store-the-residual exact.
        let mut rng = StdRng::seed_from_u64(17);
        let w = planted_cover(&mut rng, 128, 16, 4);
        let algo = HarPeledAssadi::paper(1, 0.5);
        let run = algo.run(&w.system, Arrival::Adversarial, &mut rng);
        assert!(run.feasible);
        assert!(run.passes <= 3);
    }
}
