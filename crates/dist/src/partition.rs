//! Random re-partitioning of a split instance between the two players —
//! the `D^rnd_SC` device of Lemma 3.7.
//!
//! Theorem 1 covers *random arrival* streams: the `2m` sets are dealt to
//! Alice and Bob by independent fair coins, and each player streams their
//! part in random order, which composes to a uniform arrival permutation.
//! Re-partitioning does not change the multiset of sets, so the `θ`-gap of
//! `D_SC` (opt = 2 vs opt > 2α) survives verbatim.

use rand::Rng;
use streamcover_core::{BitSet, SetId, SetSystem};

/// A random split of `2m` sets between the players. Each entry carries the
/// set's id in the *original* combined instance (Alice-then-Bob order), so
/// partitioned runs can be mapped back.
#[derive(Clone, Debug)]
pub struct RandomPartition {
    /// Universe size `n`.
    pub universe: usize,
    /// Alice's dealt sets, as `(original id, set)`.
    pub alice: Vec<(SetId, BitSet)>,
    /// Bob's dealt sets, as `(original id, set)`.
    pub bob: Vec<(SetId, BitSet)>,
}

impl RandomPartition {
    /// The partitioned instance as one system: Alice's dealt sets first,
    /// then Bob's.
    pub fn combined(&self) -> SetSystem {
        let mut all = SetSystem::new(self.universe);
        for (_, s) in self.alice.iter().chain(self.bob.iter()) {
            all.push(s.clone());
        }
        all
    }

    /// Total number of sets (`2m`).
    pub fn len(&self) -> usize {
        self.alice.len() + self.bob.len()
    }

    /// Whether the partition holds no sets.
    pub fn is_empty(&self) -> bool {
        self.alice.is_empty() && self.bob.is_empty()
    }
}

/// Deals the `2m` sets of a split instance to the players by independent
/// fair coins (Lemma 3.7's `D^rnd_SC`). Original ids follow the
/// Alice-then-Bob convention of the input: `alice.set(i)` has id `i`,
/// `bob.set(i)` has id `alice.len() + i`.
///
/// # Panics
/// Panics if the two systems' universes differ.
pub fn random_partition<R: Rng + ?Sized>(
    rng: &mut R,
    alice: &SetSystem,
    bob: &SetSystem,
) -> RandomPartition {
    assert_eq!(
        alice.universe(),
        bob.universe(),
        "players must share a universe"
    );
    let mut out = RandomPartition {
        universe: alice.universe(),
        alice: Vec::new(),
        bob: Vec::new(),
    };
    let m = alice.len();
    let pool = alice.iter().chain(bob.iter().map(|(i, s)| (m + i, s)));
    for (id, s) in pool {
        if rng.gen_bool(0.5) {
            out.alice.push((id, s.to_bitset()));
        } else {
            out.bob.push((id, s.to_bitset()));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::{rngs::StdRng, SeedableRng};

    fn two_systems() -> (SetSystem, SetSystem) {
        let a = SetSystem::from_elements(6, &[vec![0, 1], vec![2]]);
        let b = SetSystem::from_elements(6, &[vec![3], vec![4, 5]]);
        (a, b)
    }

    #[test]
    fn partition_preserves_the_multiset_with_original_ids() {
        let (a, b) = two_systems();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..20 {
            let part = random_partition(&mut rng, &a, &b);
            assert_eq!(part.len(), 4);
            assert!(!part.is_empty());
            let mut ids: Vec<SetId> = part
                .alice
                .iter()
                .chain(part.bob.iter())
                .map(|(i, _)| *i)
                .collect();
            ids.sort_unstable();
            assert_eq!(ids, vec![0, 1, 2, 3]);
            for (id, s) in part.alice.iter().chain(part.bob.iter()) {
                let original = if *id < 2 { a.set(*id) } else { b.set(*id - 2) };
                assert_eq!(original, s, "id {id} payload mismatch");
            }
        }
    }

    #[test]
    fn combined_lists_alice_then_bob() {
        let (a, b) = two_systems();
        let mut rng = StdRng::seed_from_u64(2);
        let part = random_partition(&mut rng, &a, &b);
        let all = part.combined();
        assert_eq!(all.len(), 4);
        for (k, (_, s)) in part.alice.iter().chain(part.bob.iter()).enumerate() {
            assert_eq!(all.set(k), s);
        }
    }

    #[test]
    fn deals_are_random() {
        let (a, b) = two_systems();
        let mut rng = StdRng::seed_from_u64(3);
        let mut alice_counts = 0usize;
        let trials = 400;
        for _ in 0..trials {
            alice_counts += random_partition(&mut rng, &a, &b).alice.len();
        }
        let mean = alice_counts as f64 / trials as f64;
        assert!(
            (mean - 2.0).abs() < 0.2,
            "Alice got {mean} of 4 sets on average"
        );
    }

    #[test]
    #[should_panic(expected = "share a universe")]
    fn mismatched_universes_rejected() {
        let a = SetSystem::new(5);
        let b = SetSystem::new(6);
        random_partition(&mut StdRng::seed_from_u64(4), &a, &b);
    }
}
