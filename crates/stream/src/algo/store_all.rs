//! The store-everything baseline: one pass, `Θ(mn)`-ish bits, optimal
//! answer. This is the trivial upper bound the streaming model exists to
//! beat — and the yardstick the lower bound says you cannot beat by more
//! than `n^{1-1/α}` while keeping `α`-approximation.

use crate::meter::SpaceMeter;
use crate::parallel::ParallelPass;
use crate::report::{CoverRun, SetCoverStreamer};
use crate::runtime::{ExecPolicy, Runtime};
use crate::stream::{Arrival, SetStream};
use rand::rngs::StdRng;
use streamcover_core::{budgeted_cover_of, BitSet, SetSystem};

/// One-pass store-all exact baseline. The storing pass's fan-out is the
/// [`ExecPolicy`]'s business; the struct only carries the solver budget.
#[derive(Clone, Copy, Debug)]
pub struct StoreAll {
    /// Node budget for the offline exact solve (falls back to the greedy
    /// incumbent when exceeded).
    pub node_budget: u64,
}

impl Default for StoreAll {
    fn default() -> Self {
        StoreAll {
            node_budget: 5_000_000,
        }
    }
}

impl SetCoverStreamer for StoreAll {
    fn name(&self) -> &'static str {
        "store-all"
    }

    fn run_in(
        &self,
        rt: &Runtime,
        policy: &ExecPolicy,
        sys: &SetSystem,
        arrival: Arrival,
        _rng: &mut StdRng,
    ) -> CoverRun {
        let mut stream = SetStream::new(sys, arrival);
        let meter = SpaceMeter::new();
        let n = stream.universe();
        // Storing pass: per-worker arenas merged in arrival order; every
        // copy's bits stay live for the offline solve.
        let (order, stored, _stored_bits) =
            ParallelPass::from_policy(rt, policy).store_pass(&mut stream, &meter, None);
        // Offline exact solve on the stored copy.
        let target = BitSet::full(n);
        let (ids, _complete) = budgeted_cover_of(&stored, &target, self.node_budget);
        let (solution, feasible) = match ids {
            Ok(local) => {
                // Map stored positions back to instance ids.
                let mapped: Vec<usize> = local.into_iter().map(|j| order[j]).collect();
                let ok = sys.is_cover(&mapped);
                (mapped, ok)
            }
            Err(_) => (Vec::new(), false),
        };
        CoverRun {
            algorithm: self.name(),
            solution,
            feasible,
            passes: stream.passes_made(),
            peak_bits: meter.peak_bits(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use streamcover_core::exact_set_cover;
    use streamcover_dist::planted_cover;

    #[test]
    fn finds_the_optimum_in_one_pass() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = planted_cover(&mut rng, 128, 24, 4);
        let run = StoreAll::default().run(&w.system, Arrival::Adversarial, &mut rng);
        assert!(run.feasible);
        assert_eq!(run.passes, 1);
        assert_eq!(
            run.size(),
            exact_set_cover(&w.system).expect("coverable").size()
        );
    }

    #[test]
    fn charges_the_whole_input() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = planted_cover(&mut rng, 128, 24, 4);
        let run = StoreAll::default().run(&w.system, Arrival::Adversarial, &mut rng);
        let expected: u64 = w.system.iter().map(|(_, s)| s.stored_bits().max(1)).sum();
        assert_eq!(run.peak_bits, expected);
    }

    #[test]
    fn solution_uses_instance_ids_under_random_arrival() {
        let mut rng = StdRng::seed_from_u64(3);
        let w = planted_cover(&mut rng, 64, 12, 3);
        let run = StoreAll::default().run(&w.system, Arrival::Random { seed: 5 }, &mut rng);
        assert!(run.feasible);
        assert!(w.system.is_cover(&run.solution));
    }

    #[test]
    fn infeasible_instance() {
        let sys = SetSystem::from_elements(3, &[vec![0]]);
        let mut rng = StdRng::seed_from_u64(4);
        let run = StoreAll::default().run(&sys, Arrival::Adversarial, &mut rng);
        assert!(!run.feasible);
    }

    #[test]
    fn worker_count_never_changes_the_run() {
        let mut rng = StdRng::seed_from_u64(5);
        let w = planted_cover(&mut rng, 128, 40, 5);
        let rt = Runtime::new(4);
        for arrival in [Arrival::Adversarial, Arrival::Random { seed: 9 }] {
            let base = StoreAll::default().run(&w.system, arrival, &mut rng);
            for workers in [2, 8] {
                let run = StoreAll::default().run_in(
                    &rt,
                    &ExecPolicy::sequential().workers(workers),
                    &w.system,
                    arrival,
                    &mut rng,
                );
                assert_eq!(run.solution, base.solution, "workers={workers}");
                assert_eq!(run.peak_bits, base.peak_bits, "workers={workers}");
            }
        }
    }
}
