//! The cluster wire format: versioned frames, self-contained and
//! dependency-free.
//!
//! Every byte exchanged between the coordinator and a shard owner is one
//! [`Frame`]: a fixed 16-byte little-endian header (magic, version, kind,
//! sender owner, round, payload length) followed by a kind-specific
//! payload. Set payloads ship the arena representation **verbatim** — a
//! `Chunked` or `EliasFano` set crosses the wire as its raw container /
//! high–low words, no decode on either side — so the measured bytes are the
//! bytes the store actually holds, and [`SetStore::push_ref`] reconstructs
//! the identical representation on the far end.
//!
//! The format is deliberately minimal: fixed-width little-endian integers,
//! length-prefixed arrays, no varints, no padding. [`decode_frame`] is the
//! single entry point and validates magic, version, kind, and every
//! declared length against the buffer before slicing.

use streamcover_core::store::CARD_UNKNOWN;
use streamcover_core::{BitSet, SetRef, SetStore};

/// Frame magic: `"SCLU"` in little-endian byte order.
pub const FRAME_MAGIC: u32 = 0x554C_4353;
/// Current wire version; bumped on any incompatible layout change.
pub const WIRE_VERSION: u8 = 1;
/// Fixed header length in bytes.
pub const HEADER_LEN: usize = 16;
/// The `owner` header value used by coordinator-sent frames.
pub const COORDINATOR: u16 = u16::MAX;

/// Wire-level decode failures.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Buffer ended before a declared length.
    Truncated,
    /// Header magic mismatch.
    BadMagic(u32),
    /// Unknown wire version.
    BadVersion(u8),
    /// Unknown frame kind byte.
    BadKind(u8),
    /// A payload failed structural validation.
    BadPayload(&'static str),
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            WireError::Truncated => write!(f, "frame truncated"),
            WireError::BadMagic(m) => write!(f, "bad frame magic {m:#010x}"),
            WireError::BadVersion(v) => write!(f, "unsupported wire version {v}"),
            WireError::BadKind(k) => write!(f, "unknown frame kind {k}"),
            WireError::BadPayload(why) => write!(f, "bad payload: {why}"),
        }
    }
}

impl std::error::Error for WireError {}

/// One protocol message, ready to encode or freshly decoded.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Frame {
    /// Owner → coordinator (process fabric): "owner `owner` is connected".
    Join {
        /// The joining owner's index.
        owner: u16,
    },
    /// Coordinator → owner (process fabric): shard-transfer preamble.
    Hello {
        /// Total owner count.
        owners: u16,
        /// Receiving owner's index.
        owner: u16,
        /// Global id of the shard's first set.
        id_base: u64,
        /// Number of `SetPayload` frames that follow.
        nsets: u64,
        /// Universe size `n`.
        universe: u64,
        /// The cover target as dense words over `[n]`.
        target_words: Vec<u64>,
    },
    /// Coordinator → owner (process fabric): one shard set, representation
    /// verbatim.
    SetPayload(OwnedSet),
    /// Owner → coordinator: local CELF best under the current residual.
    /// `gain == 0` means no local set makes progress (`id` is ignored).
    GainReport {
        /// Sending owner.
        owner: u16,
        /// Protocol round.
        round: u32,
        /// Marginal gain of the owner's best set.
        gain: u64,
        /// Global id of that set (tie-break: smallest id at equal gain).
        id: u64,
    },
    /// Coordinator → winning owner: "your set `id` is picked; send its
    /// residual delta".
    PickRequest {
        /// Protocol round.
        round: u32,
        /// Picked global set id.
        id: u64,
    },
    /// Winning owner → coordinator: the elements the pick newly covers
    /// (`S_id ∩ residual`, sorted) — per-round bytes scale with coverage
    /// change, not universe size.
    Delta {
        /// Sending owner.
        owner: u16,
        /// Protocol round.
        round: u32,
        /// Newly covered elements, strictly increasing.
        elems: Vec<u32>,
    },
    /// Coordinator → every owner: apply `elems` to the local residual
    /// (empty for the winner, who already applied it) and either continue
    /// (`cont`) into the next report round or stop.
    Advance {
        /// Protocol round.
        round: u32,
        /// Whether another report round follows.
        cont: bool,
        /// Residual delta to subtract locally.
        elems: Vec<u32>,
    },
    /// Coordinator → every owner: no set makes progress anywhere; stop.
    Finish {
        /// Protocol round.
        round: u32,
    },
    /// Owner → coordinator: the owner hit an unrecoverable error.
    Fault {
        /// Sending owner.
        owner: u16,
        /// Human-readable cause.
        message: String,
    },
}

impl Frame {
    /// The header kind byte.
    fn kind(&self) -> u8 {
        match self {
            Frame::Join { .. } => 1,
            Frame::Hello { .. } => 2,
            Frame::SetPayload(_) => 3,
            Frame::GainReport { .. } => 4,
            Frame::PickRequest { .. } => 5,
            Frame::Delta { .. } => 6,
            Frame::Advance { .. } => 7,
            Frame::Finish { .. } => 8,
            Frame::Fault { .. } => 9,
        }
    }

    /// The header `owner` field (sender for owner frames, [`COORDINATOR`]
    /// otherwise).
    fn owner(&self) -> u16 {
        match self {
            Frame::Join { owner }
            | Frame::GainReport { owner, .. }
            | Frame::Delta { owner, .. }
            | Frame::Fault { owner, .. } => *owner,
            Frame::Hello { owner, .. } => *owner,
            _ => COORDINATOR,
        }
    }

    /// The header `round` field (0 for setup/fault frames).
    fn round(&self) -> u32 {
        match self {
            Frame::GainReport { round, .. }
            | Frame::PickRequest { round, .. }
            | Frame::Delta { round, .. }
            | Frame::Advance { round, .. }
            | Frame::Finish { round } => *round,
            _ => 0,
        }
    }
}

/// An owned set in one of the four arena representations, as decoded off
/// the wire. [`as_set_ref`](OwnedSet::as_set_ref) re-views it for
/// [`SetStore::push_ref`], which copies the verbatim ranges back into an
/// arena — the representation survives the roundtrip bit-for-bit.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct OwnedSet {
    universe: usize,
    repr: OwnedRepr,
}

#[derive(Clone, Debug, PartialEq, Eq)]
enum OwnedRepr {
    Sparse {
        elems: Vec<u32>,
    },
    Dense {
        words: Vec<u64>,
        card: usize,
    },
    Chunked {
        meta: Vec<u32>,
        data32: Vec<u32>,
        data64: Vec<u64>,
        card: usize,
    },
    EliasFano {
        high: Vec<u64>,
        low: Vec<u64>,
        low_bits: u32,
        card: usize,
    },
}

impl OwnedSet {
    /// Copies a borrowed arena view into owned buffers (the encode-side
    /// staging step; no representation change).
    pub fn from_ref(s: SetRef<'_>) -> OwnedSet {
        let universe = s.universe();
        let repr = match s {
            SetRef::Sparse { elems, .. } => OwnedRepr::Sparse {
                elems: elems.to_vec(),
            },
            SetRef::Dense { words, card, .. } => OwnedRepr::Dense {
                words: words.to_vec(),
                card,
            },
            SetRef::Chunked {
                meta,
                data32,
                data64,
                card,
                ..
            } => OwnedRepr::Chunked {
                meta: meta.to_vec(),
                data32: data32.to_vec(),
                data64: data64.to_vec(),
                card,
            },
            SetRef::EliasFano {
                high,
                low,
                low_bits,
                card,
                ..
            } => OwnedRepr::EliasFano {
                high: high.to_vec(),
                low: low.to_vec(),
                low_bits,
                card,
            },
        };
        OwnedSet { universe, repr }
    }

    /// The universe size this set lives in.
    pub fn universe(&self) -> usize {
        self.universe
    }

    /// A borrowed arena view of the owned buffers.
    pub fn as_set_ref(&self) -> SetRef<'_> {
        match &self.repr {
            OwnedRepr::Sparse { elems } => SetRef::Sparse {
                elems,
                universe: self.universe,
            },
            OwnedRepr::Dense { words, card } => SetRef::Dense {
                words,
                universe: self.universe,
                card: *card,
            },
            OwnedRepr::Chunked {
                meta,
                data32,
                data64,
                card,
            } => SetRef::Chunked {
                meta,
                data32,
                data64,
                universe: self.universe,
                card: *card,
            },
            OwnedRepr::EliasFano {
                high,
                low,
                low_bits,
                card,
            } => SetRef::EliasFano {
                high,
                low,
                low_bits: *low_bits,
                universe: self.universe,
                card: *card,
            },
        }
    }

    /// Pushes this set into `store`, representation verbatim.
    pub fn push_into(&self, store: &mut SetStore) -> usize {
        store.push_ref(self.as_set_ref())
    }
}

// ---- primitive writers/readers ------------------------------------------

fn put_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u32s(out: &mut Vec<u8>, vs: &[u32]) {
    for &v in vs {
        put_u32(out, v);
    }
}

fn put_u64s(out: &mut Vec<u8>, vs: &[u64]) {
    for &v in vs {
        put_u64(out, v);
    }
}

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], WireError> {
        let end = self.pos.checked_add(n).ok_or(WireError::Truncated)?;
        if end > self.buf.len() {
            return Err(WireError::Truncated);
        }
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    fn u8(&mut self) -> Result<u8, WireError> {
        Ok(self.take(1)?[0])
    }

    fn u16(&mut self) -> Result<u16, WireError> {
        Ok(u16::from_le_bytes(self.take(2)?.try_into().unwrap()))
    }

    fn u32(&mut self) -> Result<u32, WireError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    fn u64(&mut self) -> Result<u64, WireError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    fn u32s(&mut self, n: usize) -> Result<Vec<u32>, WireError> {
        let bytes = self.take(n.checked_mul(4).ok_or(WireError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(4)
            .map(|c| u32::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn u64s(&mut self, n: usize) -> Result<Vec<u64>, WireError> {
        let bytes = self.take(n.checked_mul(8).ok_or(WireError::Truncated)?)?;
        Ok(bytes
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().unwrap()))
            .collect())
    }

    fn done(&self) -> Result<(), WireError> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(WireError::BadPayload("trailing bytes"))
        }
    }
}

// ---- set body ------------------------------------------------------------

const TAG_SPARSE: u8 = 0;
const TAG_DENSE: u8 = 1;
const TAG_CHUNKED: u8 = 2;
const TAG_ELIAS_FANO: u8 = 3;

/// Cardinality sentinel on the wire for lazily counted dense views.
const WIRE_CARD_UNKNOWN: u64 = u64::MAX;

/// Appends the self-describing set body (`tag`, `universe`, dims, verbatim
/// ranges) for any of the four representations.
pub fn encode_set_body(s: SetRef<'_>, out: &mut Vec<u8>) {
    put_u64(out, s.universe() as u64);
    match s {
        SetRef::Sparse { elems, .. } => {
            out.push(TAG_SPARSE);
            put_u32(out, elems.len() as u32);
            put_u32s(out, elems);
        }
        SetRef::Dense { words, card, .. } => {
            out.push(TAG_DENSE);
            let wire_card = if card == CARD_UNKNOWN {
                WIRE_CARD_UNKNOWN
            } else {
                card as u64
            };
            put_u64(out, wire_card);
            put_u32(out, words.len() as u32);
            put_u64s(out, words);
        }
        SetRef::Chunked {
            meta,
            data32,
            data64,
            card,
            ..
        } => {
            out.push(TAG_CHUNKED);
            put_u64(out, card as u64);
            put_u32(out, meta.len() as u32);
            put_u32(out, data32.len() as u32);
            put_u32(out, data64.len() as u32);
            put_u32s(out, meta);
            put_u32s(out, data32);
            put_u64s(out, data64);
        }
        SetRef::EliasFano {
            high,
            low,
            low_bits,
            card,
            ..
        } => {
            out.push(TAG_ELIAS_FANO);
            put_u64(out, card as u64);
            put_u32(out, low_bits);
            put_u32(out, high.len() as u32);
            put_u32(out, low.len() as u32);
            put_u64s(out, high);
            put_u64s(out, low);
        }
    }
}

/// Decodes a complete standalone set body produced by
/// [`encode_set_body`] (no trailing bytes allowed).
pub fn decode_set_payload(bytes: &[u8]) -> Result<OwnedSet, WireError> {
    let mut r = Reader::new(bytes);
    let set = decode_set_body(&mut r)?;
    r.done()?;
    Ok(set)
}

fn decode_set_body(r: &mut Reader<'_>) -> Result<OwnedSet, WireError> {
    let universe = r.u64()? as usize;
    let tag = r.u8()?;
    let repr = match tag {
        TAG_SPARSE => {
            let card = r.u32()? as usize;
            OwnedRepr::Sparse {
                elems: r.u32s(card)?,
            }
        }
        TAG_DENSE => {
            let wire_card = r.u64()?;
            let card = if wire_card == WIRE_CARD_UNKNOWN {
                CARD_UNKNOWN
            } else {
                usize::try_from(wire_card).map_err(|_| WireError::BadPayload("dense card"))?
            };
            let nwords = r.u32()? as usize;
            if nwords != universe.div_ceil(64) {
                return Err(WireError::BadPayload("dense word count"));
            }
            OwnedRepr::Dense {
                words: r.u64s(nwords)?,
                card,
            }
        }
        TAG_CHUNKED => {
            let card = r.u64()? as usize;
            let meta_len = r.u32()? as usize;
            let d32_len = r.u32()? as usize;
            let d64_len = r.u32()? as usize;
            if !meta_len.is_multiple_of(4) {
                return Err(WireError::BadPayload("chunked meta stride"));
            }
            OwnedRepr::Chunked {
                meta: r.u32s(meta_len)?,
                data32: r.u32s(d32_len)?,
                data64: r.u64s(d64_len)?,
                card,
            }
        }
        TAG_ELIAS_FANO => {
            let card = r.u64()? as usize;
            let low_bits = r.u32()?;
            if low_bits > 64 {
                return Err(WireError::BadPayload("elias-fano low bits"));
            }
            let high_len = r.u32()? as usize;
            let low_len = r.u32()? as usize;
            OwnedRepr::EliasFano {
                high: r.u64s(high_len)?,
                low: r.u64s(low_len)?,
                low_bits,
                card,
            }
        }
        other => return Err(WireError::BadKind(other)),
    };
    Ok(OwnedSet { universe, repr })
}

// ---- frame encode/decode -------------------------------------------------

/// Encodes a frame: 16-byte header + payload.
pub fn encode_frame(f: &Frame) -> Vec<u8> {
    let mut payload = Vec::new();
    match f {
        Frame::Join { .. } | Frame::Finish { .. } => {}
        Frame::Hello {
            owners,
            id_base,
            nsets,
            universe,
            target_words,
            ..
        } => {
            put_u16(&mut payload, *owners);
            put_u64(&mut payload, *id_base);
            put_u64(&mut payload, *nsets);
            put_u64(&mut payload, *universe);
            put_u32(&mut payload, target_words.len() as u32);
            put_u64s(&mut payload, target_words);
        }
        Frame::SetPayload(s) => encode_set_body(s.as_set_ref(), &mut payload),
        Frame::GainReport { gain, id, .. } => {
            put_u64(&mut payload, *gain);
            put_u64(&mut payload, *id);
        }
        Frame::PickRequest { id, .. } => put_u64(&mut payload, *id),
        Frame::Delta { elems, .. } => {
            put_u32(&mut payload, elems.len() as u32);
            put_u32s(&mut payload, elems);
        }
        Frame::Advance { cont, elems, .. } => {
            payload.push(u8::from(*cont));
            put_u32(&mut payload, elems.len() as u32);
            put_u32s(&mut payload, elems);
        }
        Frame::Fault { message, .. } => payload.extend_from_slice(message.as_bytes()),
    }

    let mut out = Vec::with_capacity(HEADER_LEN + payload.len());
    put_u32(&mut out, FRAME_MAGIC);
    out.push(WIRE_VERSION);
    out.push(f.kind());
    put_u16(&mut out, f.owner());
    put_u32(&mut out, f.round());
    put_u32(&mut out, payload.len() as u32);
    out.extend_from_slice(&payload);
    out
}

/// Parses a header prefix and returns the total frame length
/// (`HEADER_LEN + payload_len`) — the framing hook stream transports use to
/// know how much to read.
pub fn frame_len(header: &[u8]) -> Result<usize, WireError> {
    if header.len() < HEADER_LEN {
        return Err(WireError::Truncated);
    }
    let magic = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if magic != FRAME_MAGIC {
        return Err(WireError::BadMagic(magic));
    }
    if header[4] != WIRE_VERSION {
        return Err(WireError::BadVersion(header[4]));
    }
    let payload_len = u32::from_le_bytes(header[12..16].try_into().unwrap());
    Ok(HEADER_LEN + payload_len as usize)
}

/// Decodes one complete frame (header + payload, no trailing bytes).
pub fn decode_frame(bytes: &[u8]) -> Result<Frame, WireError> {
    let total = frame_len(bytes)?;
    if bytes.len() != total {
        return Err(WireError::Truncated);
    }
    let kind = bytes[5];
    let owner = u16::from_le_bytes(bytes[6..8].try_into().unwrap());
    let round = u32::from_le_bytes(bytes[8..12].try_into().unwrap());
    let mut r = Reader::new(&bytes[HEADER_LEN..]);
    let frame = match kind {
        1 => Frame::Join { owner },
        2 => {
            let owners = r.u16()?;
            let id_base = r.u64()?;
            let nsets = r.u64()?;
            let universe = r.u64()?;
            let nwords = r.u32()? as usize;
            Frame::Hello {
                owners,
                owner,
                id_base,
                nsets,
                universe,
                target_words: r.u64s(nwords)?,
            }
        }
        3 => Frame::SetPayload(decode_set_body(&mut r)?),
        4 => Frame::GainReport {
            owner,
            round,
            gain: r.u64()?,
            id: r.u64()?,
        },
        5 => Frame::PickRequest {
            round,
            id: r.u64()?,
        },
        6 => {
            let n = r.u32()? as usize;
            Frame::Delta {
                owner,
                round,
                elems: r.u32s(n)?,
            }
        }
        7 => {
            let cont = r.u8()? != 0;
            let n = r.u32()? as usize;
            Frame::Advance {
                round,
                cont,
                elems: r.u32s(n)?,
            }
        }
        8 => Frame::Finish { round },
        9 => Frame::Fault {
            owner,
            message: String::from_utf8_lossy(r.take(bytes.len() - HEADER_LEN)?).into_owned(),
        },
        other => return Err(WireError::BadKind(other)),
    };
    r.done()?;
    Ok(frame)
}

/// Encodes a sorted element delta as dense target words — the canonical
/// `Hello` target encoding.
pub fn bitset_words(target: &BitSet) -> Vec<u64> {
    target.words().to_vec()
}

/// Rebuilds a bitset over `[universe]` from its dense words.
///
/// # Panics
/// Panics if the word count does not match `⌈universe/64⌉`.
pub fn bitset_from_words(universe: usize, words: &[u64]) -> BitSet {
    BitSet::from_words(universe, words)
}

#[cfg(test)]
mod tests {
    use super::*;
    use streamcover_core::ReprPolicy;

    fn store_with(policy: ReprPolicy, universe: usize, elems: &[u32]) -> SetStore {
        let mut st = SetStore::with_policy(universe, policy);
        st.push_sorted(elems);
        st
    }

    #[test]
    fn set_body_roundtrips_every_repr() {
        let elems: Vec<u32> = (0..4000u32)
            .filter(|e| e % 7 == 0 || e % 131 == 1)
            .collect();
        for policy in [
            ReprPolicy::ForceSparse,
            ReprPolicy::ForceDense,
            ReprPolicy::ForceChunked,
            ReprPolicy::ForceEliasFano,
        ] {
            let st = store_with(policy, 1 << 17, &elems);
            let original = st.get(0);
            let mut body = Vec::new();
            encode_set_body(original, &mut body);
            let owned = decode_set_body(&mut Reader::new(&body)).expect("decode");
            assert_eq!(owned.as_set_ref(), original, "{policy:?}");
            // And the representation survives re-insertion into an arena.
            let mut back = SetStore::with_policy(1 << 17, ReprPolicy::Auto);
            owned.push_into(&mut back);
            assert_eq!(back.get(0), original, "{policy:?} push_ref");
        }
    }

    #[test]
    fn frame_roundtrips() {
        let st = store_with(ReprPolicy::ForceEliasFano, 512, &[1, 5, 100, 511]);
        let frames = vec![
            Frame::Join { owner: 3 },
            Frame::Hello {
                owners: 4,
                owner: 3,
                id_base: 96,
                nsets: 32,
                universe: 512,
                target_words: vec![u64::MAX, 0, 7, 1 << 63],
            },
            Frame::SetPayload(OwnedSet::from_ref(st.get(0))),
            Frame::GainReport {
                owner: 2,
                round: 9,
                gain: 77,
                id: 12345,
            },
            Frame::PickRequest {
                round: 9,
                id: 12345,
            },
            Frame::Delta {
                owner: 2,
                round: 9,
                elems: vec![4, 9, 400],
            },
            Frame::Advance {
                round: 9,
                cont: true,
                elems: vec![4, 9, 400],
            },
            Frame::Advance {
                round: 10,
                cont: false,
                elems: vec![],
            },
            Frame::Finish { round: 11 },
            Frame::Fault {
                owner: 1,
                message: "killed".into(),
            },
        ];
        for f in frames {
            let bytes = encode_frame(&f);
            assert_eq!(frame_len(&bytes).unwrap(), bytes.len());
            assert_eq!(decode_frame(&bytes).unwrap(), f, "roundtrip {f:?}");
        }
    }

    #[test]
    fn decode_rejects_corruption() {
        let bytes = encode_frame(&Frame::Finish { round: 1 });
        let mut bad_magic = bytes.clone();
        bad_magic[0] ^= 0xff;
        assert!(matches!(
            decode_frame(&bad_magic),
            Err(WireError::BadMagic(_))
        ));
        let mut bad_version = bytes.clone();
        bad_version[4] = 99;
        assert!(matches!(
            decode_frame(&bad_version),
            Err(WireError::BadVersion(99))
        ));
        let mut bad_kind = bytes.clone();
        bad_kind[5] = 200;
        assert!(matches!(
            decode_frame(&bad_kind),
            Err(WireError::BadKind(200))
        ));
        assert_eq!(
            decode_frame(&bytes[..bytes.len() - 1]),
            Err(WireError::Truncated)
        );
        let mut truncated_payload = encode_frame(&Frame::Delta {
            owner: 0,
            round: 0,
            elems: vec![1, 2, 3],
        });
        truncated_payload.truncate(truncated_payload.len() - 4);
        // Header still declares 3 elements → length mismatch.
        assert_eq!(decode_frame(&truncated_payload), Err(WireError::Truncated));
    }

    #[test]
    fn bitset_words_roundtrip() {
        let b = BitSet::from_iter(130, [0, 63, 64, 128, 129]);
        let words = bitset_words(&b);
        assert_eq!(bitset_from_words(130, &words), b);
    }
}
