//! Pass-budget enforcement: wraps any streaming algorithm and fails its run
//! if it exceeds a declared pass budget.
//!
//! The model of Theorem 1 quantifies over `p`-pass algorithms; this wrapper
//! turns "the algorithm claims ≤ p passes" into a checked property the
//! harness can rely on — a run that would need more passes is reported
//! infeasible rather than silently over-budget.

use crate::report::{CoverRun, SetCoverStreamer};
use crate::runtime::{ExecPolicy, Runtime};
use crate::stream::Arrival;
use rand::rngs::StdRng;
use streamcover_core::SetSystem;

/// A streaming algorithm with an enforced pass budget.
pub struct PassLimited<S> {
    /// The wrapped algorithm.
    pub inner: S,
    /// Maximum allowed passes.
    pub max_passes: usize,
}

impl<S: SetCoverStreamer> SetCoverStreamer for PassLimited<S> {
    fn name(&self) -> &'static str {
        "pass-limited"
    }

    fn run_in(
        &self,
        rt: &Runtime,
        policy: &ExecPolicy,
        sys: &SetSystem,
        arrival: Arrival,
        rng: &mut StdRng,
    ) -> CoverRun {
        let run = self.inner.run_in(rt, policy, sys, arrival, rng);
        if run.passes > self.max_passes {
            return CoverRun {
                algorithm: self.name(),
                solution: Vec::new(),
                feasible: false,
                passes: run.passes,
                peak_bits: run.peak_bits,
            };
        }
        run
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algo::{HarPeledAssadi, ThresholdGreedy};
    use rand::SeedableRng;
    use streamcover_dist::planted_cover;

    #[test]
    fn generous_budget_passes_through() {
        let mut rng = StdRng::seed_from_u64(1);
        let w = planted_cover(&mut rng, 256, 24, 4);
        let wrapped = PassLimited {
            inner: HarPeledAssadi::scaled(2, 0.5),
            max_passes: 5,
        };
        let run = wrapped.run(&w.system, Arrival::Adversarial, &mut rng);
        assert!(run.feasible);
        assert!(run.passes <= 5);
    }

    #[test]
    fn tight_budget_fails_the_run() {
        let mut rng = StdRng::seed_from_u64(2);
        let w = planted_cover(&mut rng, 1024, 32, 4);
        // Threshold greedy needs ~log n passes; 2 is not enough.
        let wrapped = PassLimited {
            inner: ThresholdGreedy,
            max_passes: 2,
        };
        let run = wrapped.run(&w.system, Arrival::Adversarial, &mut rng);
        assert!(!run.feasible, "budget violation must fail the run");
        assert!(run.passes > 2, "original pass count is still reported");
        assert!(run.solution.is_empty());
    }
}
