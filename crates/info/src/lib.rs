//! # streamcover-info
//!
//! The information-theoretic toolkit behind the lower-bound proofs of
//! Assadi (PODS 2017), as executable estimators and calculators.
//!
//! * [`entropy`] — Shannon entropy, binary entropy, plug-in (conditional)
//!   mutual-information estimators over Monte-Carlo samples.
//! * [`bounds`] — Proposition 2.1's Chernoff bound and Lemma 2.2's
//!   random-large-sets residual bound, with an empirical experiment driver.
//! * [`facts`] — Facts A.1–A.4 (chain rule, conditioning inequalities,
//!   `I(A:B|C) ≤ I(A:B)+H(C)`) checked exactly on explicit joint pmfs.
//! * [`icost`] — internal information cost (Definition 2) estimated for
//!   concrete protocols: the engine of the Proposition 2.5 / Lemma 3.5
//!   illustration (E10).
//! * [`divergence`] — KL / total variation / Hellinger with the Pinsker
//!   bridge from information to statistical distance.
//! * [`odometer`] — the Braverman–Weinstein information odometer gadget
//!   (\[14\], Lemma 3.6) at the estimator level: per-prefix leakage tracking
//!   and a budget-aborting protocol wrapper.
//!
//! ## Quickstart
//!
//! ```
//! use streamcover_info::{binary_entropy, mutual_information};
//!
//! // A fair coin carries one bit.
//! assert!((binary_entropy(0.5) - 1.0).abs() < 1e-12);
//!
//! // Plug-in MI on a deterministic relationship recovers H(X) = 2 bits.
//! let pairs: Vec<(u64, u64)> = (0..4000).map(|i| (i % 4, i % 4)).collect();
//! assert!((mutual_information(&pairs) - 2.0).abs() < 0.01);
//! ```

pub mod bounds;
pub mod divergence;
pub mod entropy;
pub mod facts;
pub mod icost;
pub mod odometer;

pub use bounds::{
    chernoff_bound, disj_lower_bound_bits, dsc_lower_bound_bits, lemma22_experiment,
    lemma22_failure_bound, lemma22_threshold, lemma22_trial,
};
pub use divergence::{hellinger_sq, kl_divergence, pinsker_bound, total_variation, Pmf};
pub use entropy::{
    binary_entropy, conditional_mutual_information, entropy_of_pmf, mutual_information, Empirical,
};
pub use facts::{check_facts, Joint3};
pub use icost::{bitset_key, estimate_disj_icost, ICostEstimate, PUBLIC_COINS};
pub use odometer::{prefix_icost, OdometerProtocol};
