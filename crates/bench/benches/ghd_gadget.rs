//! E12 — GHD sampling (rejection) cost and the D_MC gadget.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{rngs::StdRng, SeedableRng};
use streamcover_dist::ghd::{sample_no, sample_yes};
use streamcover_dist::GhdParams;

fn bench(c: &mut Criterion) {
    let mut g = c.benchmark_group("e12_ghd_gadget");
    g.sample_size(20)
        .measurement_time(std::time::Duration::from_secs(2));
    let p = GhdParams::balanced(64);
    let mut rng = StdRng::seed_from_u64(12);
    g.bench_function("ghd_sample_yes_t64", |b| {
        b.iter(|| sample_yes(&mut rng, p).hamming())
    });
    g.bench_function("ghd_sample_no_t64", |b| {
        b.iter(|| sample_no(&mut rng, p).hamming())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
