//! Cross-crate property tests (proptest): the invariants every component
//! must satisfy on arbitrary inputs.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use streamcover::dist::{sample_dsc_with_theta, MappingExtension, ScParams};
use streamcover::prelude::*;

/// Strategy: a random set system over a small universe.
fn arb_system() -> impl Strategy<Value = SetSystem> {
    (2usize..24, 1usize..10).prop_flat_map(|(n, m)| {
        proptest::collection::vec(proptest::collection::vec(0usize..n, 0..n), m)
            .prop_map(move |lists| SetSystem::from_elements(n, &lists))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn greedy_cover_is_feasible_iff_coverable(sys in arb_system()) {
        let r = greedy_set_cover(&sys);
        prop_assert_eq!(r.is_feasible(), sys.is_coverable());
        // Greedy never picks redundant zero-gain sets.
        prop_assert!(r.size() <= sys.universe().max(1));
    }

    #[test]
    fn exact_never_exceeds_greedy(sys in arb_system()) {
        let g = greedy_set_cover(&sys);
        match exact_set_cover(&sys) {
            Ok(e) => {
                let opt = e.size();
                prop_assert!(g.is_feasible());
                prop_assert!(opt <= g.size());
                // Greedy's H(n) guarantee.
                let h: f64 = (1..=sys.universe().max(1)).map(|i| 1.0 / i as f64).sum();
                prop_assert!((g.size() as f64) <= h * opt as f64 + 1e-9);
            }
            Err(CoverError::Infeasible { element }) => {
                prop_assert!(!g.is_feasible());
                // The witness element really is uncoverable.
                prop_assert!(sys.uncoverable_elements().contains(element));
            }
        }
    }

    #[test]
    fn exact_max_coverage_dominates_greedy_and_caps_at_k(
        sys in arb_system(),
        k in 0usize..5,
    ) {
        let (ids, cov) = exact_max_coverage(&sys, k);
        prop_assert!(ids.len() <= k);
        prop_assert_eq!(sys.coverage_len(&ids), cov);
        let g = greedy_max_coverage(&sys, k);
        prop_assert!(cov >= g.coverage());
        // (1 − 1/e) bound.
        prop_assert!(g.coverage() as f64 >= 0.63 * cov as f64 - 1e-9);
    }

    #[test]
    fn threshold_greedy_streaming_matches_offline_feasibility(sys in arb_system()) {
        let mut rng = StdRng::seed_from_u64(0);
        let run = ThresholdGreedy.run(&sys, Arrival::Adversarial, &mut rng);
        prop_assert_eq!(run.feasible, sys.is_coverable());
        if run.feasible {
            prop_assert!(sys.is_cover(&run.solution));
        }
    }

    #[test]
    fn mapping_extension_partitions(tn in (1usize..12).prop_flat_map(|t| (Just(t), t..40))) {
        let (t, n) = tn;
        let mut rng = StdRng::seed_from_u64((t * 1000 + n) as u64);
        let f = MappingExtension::sample(&mut rng, t, n);
        let mut seen = BitSet::new(n);
        let mut total = 0;
        for i in 0..t {
            let b = f.block(i);
            prop_assert!(b.is_disjoint(&seen));
            total += b.len();
            seen.union_with(&b);
        }
        prop_assert_eq!(total, n);
        // f(A) respects unions.
        let a = BitSet::from_iter(t, (0..t).filter(|i| i % 2 == 0));
        let fa = f.extend(&a);
        for e in 0..n {
            prop_assert_eq!(fa.contains(e), a.contains(f.block_of(e)));
        }
    }

    #[test]
    fn dsc_structure_invariants(seed in 0u64..500, theta in proptest::bool::ANY) {
        let mut rng = StdRng::seed_from_u64(seed);
        let p = ScParams::explicit(96, 4, 12);
        let inst = sample_dsc_with_theta(&mut rng, p, theta);
        for i in 0..p.m {
            // S_i ∪ T_i = [n] \ f_i(A_i ∩ B_i) — Remark 3.1-(iii).
            let union = inst.alice.set(i).union(inst.bob.set(i));
            let miss = inst.mappings[i].extend(&inst.disj[i].intersection());
            prop_assert_eq!(union, miss.complement());
        }
        match inst.i_star {
            Some(i) => {
                prop_assert!(theta);
                prop_assert!(inst.pair_covers(i));
                prop_assert!(inst.combined().is_cover(&inst.planted_cover().unwrap()));
            }
            None => {
                prop_assert!(!theta);
                for i in 0..p.m {
                    prop_assert!(!inst.pair_covers(i));
                }
            }
        }
    }

    #[test]
    fn bitset_algebra_laws(
        n in 1usize..80,
        xs in proptest::collection::vec(0usize..80, 0..40),
        ys in proptest::collection::vec(0usize..80, 0..40),
    ) {
        let a = BitSet::from_iter(n, xs.into_iter().filter(|&e| e < n));
        let b = BitSet::from_iter(n, ys.into_iter().filter(|&e| e < n));
        // De Morgan.
        prop_assert_eq!(
            a.union(&b).complement(),
            a.complement().intersection(&b.complement())
        );
        // |A| + |B| = |A∪B| + |A∩B|.
        prop_assert_eq!(a.len() + b.len(), a.union_len(&b) + a.intersection_len(&b));
        // Δ(A,B) = |A∪B| − |A∩B|.
        prop_assert_eq!(a.hamming_distance(&b), a.union_len(&b) - a.intersection_len(&b));
        // Difference partition.
        prop_assert_eq!(a.difference_len(&b) + a.intersection_len(&b), a.len());
    }

    #[test]
    fn space_meter_never_underflows_in_algorithms(seed in 0u64..40) {
        // Running Algorithm 1 end to end must keep the meter consistent
        // (release() panics on underflow — so surviving the run is the
        // assertion).
        let mut rng = StdRng::seed_from_u64(seed);
        let w = planted_cover(&mut rng, 128, 12, 3);
        let run = HarPeledAssadi::scaled(2, 0.5).run(&w.system, Arrival::Random { seed }, &mut rng);
        prop_assert!(run.feasible);
        prop_assert!(run.peak_bits > 0);
    }
}
